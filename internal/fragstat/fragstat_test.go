package fragstat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/caching"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

func snap(free ...int64) Snapshot {
	s := Snapshot{Free: free}
	return s
}

func TestFreeBytesAndLargest(t *testing.T) {
	s := snap(2, 8, 4)
	if s.FreeBytes() != 14 {
		t.Fatalf("FreeBytes = %d", s.FreeBytes())
	}
	// Snapshot fields are assumed ascending when built by Capture; the
	// direct accessors still work on raw order except LargestFree.
	s = snap(2, 4, 8)
	if s.LargestFree() != 8 {
		t.Fatalf("LargestFree = %d", s.LargestFree())
	}
	if (Snapshot{}).LargestFree() != 0 {
		t.Fatal("empty snapshot largest != 0")
	}
}

func TestUnusableIndex(t *testing.T) {
	s := snap(1, 1, 2, 4) // total 8
	cases := []struct {
		size int64
		want float64
	}{
		{1, 0},    // everything usable
		{2, 0.25}, // the two 1s unusable
		{3, 0.5},  // only the 4 usable
		{4, 0.5},  //
		{5, 1},    // nothing usable
		{100, 1},  //
	}
	for _, c := range cases {
		if got := s.UnusableIndex(c.size); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("UnusableIndex(%d) = %v, want %v", c.size, got, c.want)
		}
	}
	if (Snapshot{}).UnusableIndex(8) != 0 {
		t.Fatal("empty snapshot must report 0")
	}
}

func TestExternalFragmentation(t *testing.T) {
	if got := snap(4, 4, 8).ExternalFragmentation(); got != 0.5 {
		t.Fatalf("got %v, want 0.5", got)
	}
	if got := snap(16).ExternalFragmentation(); got != 0 {
		t.Fatalf("single block frag = %v", got)
	}
	if (Snapshot{}).ExternalFragmentation() != 0 {
		t.Fatal("empty snapshot frag != 0")
	}
}

func TestReservedWaste(t *testing.T) {
	s := Snapshot{Active: 60, Reserved: 80}
	if got := s.ReservedWaste(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("waste = %v", got)
	}
	if (Snapshot{}).ReservedWaste() != 0 {
		t.Fatal("zero reserved waste != 0")
	}
}

func TestHistogram(t *testing.T) {
	s := snap(2, 3, 4, 9, 16)
	h := s.Histogram()
	// Buckets [2,4) [4,8) [8,16) [16,32).
	if len(h) != 4 {
		t.Fatalf("%d buckets: %v", len(h), h)
	}
	if h[0].Count != 2 || h[0].Bytes != 5 {
		t.Fatalf("bucket0 %+v", h[0])
	}
	if h[1].Count != 1 || h[2].Count != 1 || h[3].Count != 1 {
		t.Fatalf("histogram %v", h)
	}
	if h[1].Lo != 4 || h[1].Hi != 8 {
		t.Fatalf("bucket1 bounds %+v", h[1])
	}
	if (Snapshot{}).Histogram() != nil {
		t.Fatal("empty snapshot should have nil histogram")
	}
	if h[0].String() == "" {
		t.Fatal("Bucket.String empty")
	}
}

func TestHistogramIncludesEmptyMiddleBuckets(t *testing.T) {
	h := snap(2, 64).Histogram()
	if len(h) != 6 { // [2,4) .. [64,128)
		t.Fatalf("%d buckets", len(h))
	}
	if h[2].Count != 0 {
		t.Fatal("middle bucket should be empty")
	}
}

func newDriver(capacity int64) *cuda.Driver {
	return cuda.NewDriver(gpu.NewDevice("t", capacity), sim.NewClock(), sim.DefaultCostModel())
}

func TestCaptureCachingAllocator(t *testing.T) {
	a := caching.New(newDriver(sim.GiB))
	b1, _ := a.Alloc(64 * sim.MiB)
	b2, _ := a.Alloc(32 * sim.MiB)
	a.Free(b2) // leaves one cached free block
	s, ok := Capture(a)
	if !ok {
		t.Fatal("caching allocator does not expose free blocks")
	}
	if len(s.Free) == 0 {
		t.Fatal("no free blocks captured")
	}
	for i := 1; i < len(s.Free); i++ {
		if s.Free[i-1] > s.Free[i] {
			t.Fatal("Capture must sort ascending")
		}
	}
	if s.Active != b1.BlockSize {
		t.Fatalf("active = %d, want %d", s.Active, b1.BlockSize)
	}
	a.Free(b1)
}

func TestCaptureGMLake(t *testing.T) {
	a := core.NewDefault(newDriver(sim.GiB))
	b, err := a.Alloc(64 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(b)
	s, ok := Capture(a)
	if !ok {
		t.Fatal("gmlake does not expose free blocks")
	}
	if s.FreeBytes() < 64*sim.MiB {
		t.Fatalf("free bytes %d below the freed block", s.FreeBytes())
	}
}

func TestCaptureUnsupportedAllocator(t *testing.T) {
	a := memalloc.NewNative(newDriver(sim.GiB))
	if _, ok := Capture(a); ok {
		t.Fatal("native allocator should not support capture")
	}
}

// Property: indices stay in [0,1], UnusableIndex is monotone in the request
// size, and FreeBytes ≥ LargestFree.
func TestIndexProperties(t *testing.T) {
	prop := func(raw []uint32, probe uint32) bool {
		free := make([]int64, 0, len(raw))
		for _, r := range raw {
			free = append(free, int64(r%(1<<20))+1)
		}
		s := Snapshot{Free: free}
		// Capture sorts; emulate.
		for i := 1; i < len(s.Free); i++ {
			for j := i; j > 0 && s.Free[j-1] > s.Free[j]; j-- {
				s.Free[j-1], s.Free[j] = s.Free[j], s.Free[j-1]
			}
		}
		p := int64(probe%(1<<21)) + 1
		u1, u2 := s.UnusableIndex(p), s.UnusableIndex(p*2)
		ef := s.ExternalFragmentation()
		if u1 < 0 || u1 > 1 || ef < 0 || ef > 1 {
			return false
		}
		if u2 < u1 {
			return false
		}
		return s.FreeBytes() >= s.LargestFree()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
