// Package fragstat computes fragmentation indices over an allocator's free
// blocks: the Gorman–Whitcroft unusable-free-space index the paper cites as
// FMFI (§5.1, [18, 41]), largest-allocatable, and log₂ free-block
// histograms.
//
// The paper deliberately does not use FMFI as its headline metric — GMLake's
// blocks have arbitrary sizes, so it defines fragmentation as
// 1 − active/reserved instead. This package supplies the classic indices
// anyway: they expose *why* the caching allocator's reserved memory is
// unusable (free space shattered into blocks below the request sizes) and
// why GMLake's is not (small free pBlocks remain stitchable).
package fragstat

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/memalloc"
	"repro/internal/sim"
)

// FreeLister is implemented by allocators that expose their cached free
// blocks (caching.Allocator, core.Allocator).
type FreeLister interface {
	FreeBlockSizes() []int64
}

// Snapshot is one observation of an allocator's free space.
type Snapshot struct {
	Free     []int64 // free block sizes, ascending
	Active   int64   // bytes assigned to tensors at capture time
	Reserved int64   // bytes reserved from the device at capture time
}

// Capture snapshots a's free blocks; ok is false when the allocator does not
// expose them.
func Capture(a memalloc.Allocator) (Snapshot, bool) {
	fl, ok := a.(FreeLister)
	if !ok {
		return Snapshot{}, false
	}
	free := fl.FreeBlockSizes()
	sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
	st := a.Stats()
	return Snapshot{Free: free, Active: st.Active, Reserved: st.Reserved}, true
}

// FreeBytes returns the total cached free bytes.
func (s Snapshot) FreeBytes() int64 {
	var total int64
	for _, f := range s.Free {
		total += f
	}
	return total
}

// LargestFree returns the largest single free block; zero when none.
func (s Snapshot) LargestFree() int64 {
	if len(s.Free) == 0 {
		return 0
	}
	return s.Free[len(s.Free)-1]
}

// UnusableIndex returns the Gorman–Whitcroft fragmentation index for a
// request of size bytes: the fraction of free memory sitting in blocks too
// small to serve it. 0 means any free byte is usable; approaching 1 means
// the free space is shattered below the request size. Zero free space
// reports 0 (nothing is unusable).
func (s Snapshot) UnusableIndex(size int64) float64 {
	total := s.FreeBytes()
	if total == 0 {
		return 0
	}
	// Free is ascending: find the first block that can serve the request.
	i := sort.Search(len(s.Free), func(i int) bool { return s.Free[i] >= size })
	var usable int64
	for _, f := range s.Free[i:] {
		usable += f
	}
	return 1 - float64(usable)/float64(total)
}

// ExternalFragmentation returns 1 − largest/total over the free space, the
// classic single-number external fragmentation measure. Zero or one free
// block reports 0.
func (s Snapshot) ExternalFragmentation() float64 {
	total := s.FreeBytes()
	if total == 0 {
		return 0
	}
	return 1 - float64(s.LargestFree())/float64(total)
}

// ReservedWaste returns (reserved − active) / reserved, the paper's
// fragmentation ratio at this instant (not at peaks).
func (s Snapshot) ReservedWaste() float64 {
	if s.Reserved == 0 {
		return 0
	}
	return 1 - float64(s.Active)/float64(s.Reserved)
}

// Bucket is one log₂ histogram bin: sizes in [Lo, Hi).
type Bucket struct {
	Lo, Hi int64
	Count  int
	Bytes  int64
}

// String renders "[2.0 MB,4.0 MB): 3 blocks, 7.5 MB".
func (b Bucket) String() string {
	return fmt.Sprintf("[%s,%s): %d blocks, %s",
		sim.FormatBytes(b.Lo), sim.FormatBytes(b.Hi), b.Count, sim.FormatBytes(b.Bytes))
}

// Histogram returns the free blocks bucketed by power-of-two size, from the
// smallest to the largest occupied bucket. Empty buckets in between are
// included so series plot evenly.
func (s Snapshot) Histogram() []Bucket {
	if len(s.Free) == 0 {
		return nil
	}
	lo := log2Floor(s.Free[0])
	hi := log2Floor(s.Free[len(s.Free)-1])
	buckets := make([]Bucket, hi-lo+1)
	for i := range buckets {
		buckets[i].Lo = 1 << (lo + i)
		buckets[i].Hi = 1 << (lo + i + 1)
	}
	for _, f := range s.Free {
		b := &buckets[log2Floor(f)-lo]
		b.Count++
		b.Bytes += f
	}
	return buckets
}

func log2Floor(n int64) int {
	if n <= 0 {
		return 0
	}
	return 63 - bits.LeadingZeros64(uint64(n))
}
