package gpu

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRangeAllocatorBasic(t *testing.T) {
	a := NewRangeAllocator(1024, 64)
	off1, err := a.Alloc(100) // rounds to 128
	if err != nil {
		t.Fatal(err)
	}
	off2, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if off1 == off2 {
		t.Fatal("overlapping allocations")
	}
	if a.Free() != 1024-128-64 {
		t.Fatalf("Free = %d, want %d", a.Free(), 1024-128-64)
	}
	a.FreeRange(off1, 100)
	a.FreeRange(off2, 64)
	if a.Free() != 1024 {
		t.Fatalf("Free after release = %d, want 1024", a.Free())
	}
	if a.FragmentCount() != 1 {
		t.Fatalf("fragments = %d, want 1 (coalesced)", a.FragmentCount())
	}
}

func TestRangeAllocatorExhaustion(t *testing.T) {
	a := NewRangeAllocator(256, 64)
	if _, err := a.Alloc(256); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(64); !errors.Is(err, ErrSpaceExhausted) {
		t.Fatalf("err = %v, want ErrSpaceExhausted", err)
	}
}

func TestRangeAllocatorBestFit(t *testing.T) {
	a := NewRangeAllocator(1024, 64)
	// Carve: [0,256) [256,512) [512,1024), then free the middle and last.
	o1, _ := a.Alloc(256)
	o2, _ := a.Alloc(256)
	o3, _ := a.Alloc(512)
	_ = o1
	a.FreeRange(o2, 256)
	a.FreeRange(o3, 512)
	// Best fit for 192 should come from the 256-range at o2, not the 512.
	got, err := a.Alloc(192)
	if err != nil {
		t.Fatal(err)
	}
	if got != o2 {
		t.Fatalf("best-fit offset = %d, want %d", got, o2)
	}
}

func TestRangeAllocatorCoalesceMiddle(t *testing.T) {
	a := NewRangeAllocator(3*64, 64)
	o1, _ := a.Alloc(64)
	o2, _ := a.Alloc(64)
	o3, _ := a.Alloc(64)
	a.FreeRange(o1, 64)
	a.FreeRange(o3, 64)
	if a.FragmentCount() != 2 {
		t.Fatalf("fragments = %d, want 2", a.FragmentCount())
	}
	a.FreeRange(o2, 64) // middle free must merge both sides
	if a.FragmentCount() != 1 {
		t.Fatalf("fragments = %d, want 1 after middle free", a.FragmentCount())
	}
	if a.LargestFree() != 3*64 {
		t.Fatalf("LargestFree = %d, want %d", a.LargestFree(), 3*64)
	}
}

func TestRangeAllocatorDoubleFreePanics(t *testing.T) {
	a := NewRangeAllocator(1024, 64)
	off, _ := a.Alloc(128)
	a.FreeRange(off, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.FreeRange(off, 128)
}

// TestRangeAllocatorProperty drives random alloc/free cycles and checks that
// no two live ranges overlap and that full release restores a single free
// fragment.
func TestRangeAllocatorProperty(t *testing.T) {
	rng := sim.NewRNG(99)
	a := NewRangeAllocator(1<<20, 256)
	type live struct{ off, size int64 }
	var lives []live
	for step := 0; step < 3000; step++ {
		if rng.Float64() < 0.6 {
			size := int64(rng.Intn(8192) + 1)
			off, err := a.Alloc(size)
			if err != nil {
				continue
			}
			rounded := ((size + 255) / 256) * 256
			for _, l := range lives {
				if off < l.off+l.size && l.off < off+rounded {
					t.Fatalf("overlap: [%d,%d) with [%d,%d)", off, off+rounded, l.off, l.off+l.size)
				}
			}
			lives = append(lives, live{off, rounded})
		} else if len(lives) > 0 {
			i := rng.Intn(len(lives))
			a.FreeRange(lives[i].off, lives[i].size)
			lives = append(lives[:i], lives[i+1:]...)
		}
	}
	for _, l := range lives {
		a.FreeRange(l.off, l.size)
	}
	if a.Free() != 1<<20 {
		t.Fatalf("Free = %d, want %d", a.Free(), 1<<20)
	}
	if a.FragmentCount() != 1 {
		t.Fatalf("fragments = %d, want 1", a.FragmentCount())
	}
}

func TestRangeAllocatorQuick(t *testing.T) {
	// Allocations rounded to granule never exceed span and always align.
	f := func(sizes []uint16) bool {
		a := NewRangeAllocator(1<<18, 128)
		for _, s := range sizes {
			size := int64(s%4096) + 1
			off, err := a.Alloc(size)
			if err != nil {
				return true // exhaustion is fine
			}
			if off%128 != 0 || off+size > 1<<18 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDevicePhysicalLedger(t *testing.T) {
	d := NewDevice("a100-0", 80*sim.GiB)
	id1, err := d.AllocPhysical(30 * sim.GiB)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := d.AllocPhysical(50 * sim.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocPhysical(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-capacity alloc err = %v, want ErrOutOfMemory", err)
	}
	if d.Used() != 80*sim.GiB || d.FreeBytes() != 0 {
		t.Fatalf("Used = %d, Free = %d", d.Used(), d.FreeBytes())
	}
	d.FreePhysical(id1)
	if d.Used() != 50*sim.GiB {
		t.Fatalf("Used after free = %d", d.Used())
	}
	if d.PeakUsed() != 80*sim.GiB {
		t.Fatalf("PeakUsed = %d, want 80GiB", d.PeakUsed())
	}
	d.FreePhysical(id2)
	if d.LiveSegments() != 0 {
		t.Fatalf("LiveSegments = %d, want 0", d.LiveSegments())
	}
	d.ResetPeak()
	if d.PeakUsed() != 0 {
		t.Fatalf("PeakUsed after ResetPeak = %d, want 0", d.PeakUsed())
	}
}

func TestDeviceFreeUnknownPanics(t *testing.T) {
	d := NewDevice("x", sim.GiB)
	defer func() {
		if recover() == nil {
			t.Fatal("FreePhysical(unknown) did not panic")
		}
	}()
	d.FreePhysical(12345)
}

func TestDeviceVAReservations(t *testing.T) {
	d := NewDevice("x", sim.GiB)
	a1, err := d.ReserveVA(10 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := d.ReserveVA(10 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("overlapping VA reservations")
	}
	if a1%uint64(VAGranule) != 0 || a2%uint64(VAGranule) != 0 {
		t.Fatal("VA not aligned to granule")
	}
	d.ReleaseVA(a1, 10*sim.MiB)
	d.ReleaseVA(a2, 10*sim.MiB)
	if d.VAFragments() != 1 {
		t.Fatalf("VA fragments = %d, want 1", d.VAFragments())
	}
}

func TestDeviceSegmentSize(t *testing.T) {
	d := NewDevice("x", sim.GiB)
	id, _ := d.AllocPhysical(2 * sim.MiB)
	if size, ok := d.SegmentSize(id); !ok || size != 2*sim.MiB {
		t.Fatalf("SegmentSize = %d, %v", size, ok)
	}
	if _, ok := d.SegmentSize(9999); ok {
		t.Fatal("SegmentSize of unknown id should report !ok")
	}
}

func TestDeviceAccessors(t *testing.T) {
	d := NewDevice("a100", sim.GiB)
	if d.Name() != "a100" || d.Capacity() != sim.GiB {
		t.Fatalf("accessors: %q %d", d.Name(), d.Capacity())
	}
	ra := NewRangeAllocator(sim.GiB, 512)
	if ra.Span() != sim.GiB {
		t.Fatalf("Span = %d", ra.Span())
	}
}
