package gpu

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when a physical allocation exceeds the device's
// remaining capacity. It is the simulated equivalent of
// CUDA_ERROR_OUT_OF_MEMORY.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// SegmentID identifies one live physical allocation on a Device.
type SegmentID int64

// Device simulates one GPU's memory system.
//
// Physical memory is page-mapped behind the driver on real hardware, so any
// allocation succeeds as long as enough total bytes are free — physical
// contiguity is never client-visible. The device therefore tracks physical
// memory as a capacity ledger of live segments. The virtual address space,
// where contiguity *is* client-visible, is modelled precisely by a
// RangeAllocator.
type Device struct {
	name     string
	capacity int64
	used     int64
	peakUsed int64
	segments map[SegmentID]int64
	nextSeg  SegmentID
	va       *RangeAllocator
}

// VASpan is the size of the simulated device virtual address space. 1 PiB
// comfortably exceeds any experiment's reservation churn while keeping
// offsets readable in traces.
const VASpan = int64(1) << 50

// VAGranule is the smallest unit of virtual address space the device hands
// out, matching CUDA's 64 KiB VA granularity.
const VAGranule = int64(64) << 10

// NewDevice creates a device with the given physical capacity in bytes.
func NewDevice(name string, capacity int64) *Device {
	if capacity <= 0 {
		panic(fmt.Sprintf("gpu: capacity %d", capacity))
	}
	return &Device{
		name:     name,
		capacity: capacity,
		segments: make(map[SegmentID]int64),
		va:       NewRangeAllocator(VASpan, VAGranule),
	}
}

// Name returns the device's display name.
func (d *Device) Name() string { return d.name }

// Capacity returns total physical memory in bytes.
func (d *Device) Capacity() int64 { return d.capacity }

// Used returns currently allocated physical bytes.
func (d *Device) Used() int64 { return d.used }

// PeakUsed returns the high-water mark of allocated physical bytes.
func (d *Device) PeakUsed() int64 { return d.peakUsed }

// FreeBytes returns remaining physical capacity.
func (d *Device) FreeBytes() int64 { return d.capacity - d.used }

// LiveSegments returns the number of live physical allocations.
func (d *Device) LiveSegments() int { return len(d.segments) }

// AllocPhysical reserves size physical bytes and returns a segment handle.
// It fails with ErrOutOfMemory if the device cannot hold the allocation.
func (d *Device) AllocPhysical(size int64) (SegmentID, error) {
	if size <= 0 {
		return 0, fmt.Errorf("gpu: AllocPhysical size %d", size)
	}
	if d.used+size > d.capacity {
		return 0, fmt.Errorf("%w: want %d, free %d", ErrOutOfMemory, size, d.FreeBytes())
	}
	d.nextSeg++
	id := d.nextSeg
	d.segments[id] = size
	d.used += size
	if d.used > d.peakUsed {
		d.peakUsed = d.used
	}
	return id, nil
}

// FreePhysical releases a segment. Freeing an unknown segment panics: it is
// always an allocator bug, never a runtime condition.
func (d *Device) FreePhysical(id SegmentID) {
	size, ok := d.segments[id]
	if !ok {
		panic(fmt.Sprintf("gpu: FreePhysical of unknown segment %d", id))
	}
	delete(d.segments, id)
	d.used -= size
}

// SegmentSize returns the size of a live segment.
func (d *Device) SegmentSize(id SegmentID) (int64, bool) {
	size, ok := d.segments[id]
	return size, ok
}

// ReserveVA reserves size bytes of device virtual address space and returns
// the base address.
func (d *Device) ReserveVA(size int64) (uint64, error) {
	off, err := d.va.Alloc(size)
	if err != nil {
		return 0, err
	}
	return uint64(off), nil
}

// ReleaseVA returns a reservation obtained from ReserveVA.
func (d *Device) ReleaseVA(addr uint64, size int64) {
	d.va.FreeRange(int64(addr), size)
}

// VAFragments reports the number of disjoint free VA ranges (diagnostics).
func (d *Device) VAFragments() int { return d.va.FragmentCount() }

// ResetPeak restarts peak tracking from the current usage; harnesses call it
// between warm-up and measured iterations.
func (d *Device) ResetPeak() { d.peakUsed = d.used }
