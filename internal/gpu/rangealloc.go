// Package gpu simulates the GPU device that both allocators run against: a
// fixed-capacity physical memory (page-mapped, so physical contiguity is
// never a client-visible constraint — exactly as on real CUDA devices) and a
// process-wide virtual address space from which cudaMalloc results and
// cuMemAddressReserve reservations are carved.
package gpu

import (
	"errors"
	"fmt"

	"repro/internal/container"
)

// ErrSpaceExhausted is returned by RangeAllocator when no free range can
// satisfy a request.
var ErrSpaceExhausted = errors.New("gpu: address space exhausted")

// RangeAllocator hands out non-overlapping [offset, offset+size) ranges from
// a fixed span, with best-fit placement and free-range coalescing. It backs
// the simulated virtual address space.
//
// Two ordered indexes are kept over the free ranges: one by offset (for
// neighbour coalescing on free) and one by size (for best-fit allocation).
type RangeAllocator struct {
	span    int64
	free    int64
	byAddr  *container.Tree[*freeRange]
	bySize  *container.Tree[*freeRange]
	granule int64
}

type freeRange struct {
	offset, size int64
	addrNode     *container.Node[*freeRange]
	sizeNode     *container.Node[*freeRange]
}

// NewRangeAllocator creates an allocator over [0, span) handing out ranges
// aligned to granule. Span must be a positive multiple of granule.
func NewRangeAllocator(span, granule int64) *RangeAllocator {
	if granule <= 0 || span <= 0 || span%granule != 0 {
		panic(fmt.Sprintf("gpu: bad range allocator span=%d granule=%d", span, granule))
	}
	a := &RangeAllocator{
		span:    span,
		free:    span,
		granule: granule,
		byAddr: container.NewTree[*freeRange](func(x, y *freeRange) bool {
			return x.offset < y.offset
		}),
		bySize: container.NewTree[*freeRange](func(x, y *freeRange) bool {
			if x.size != y.size {
				return x.size < y.size
			}
			return x.offset < y.offset
		}),
	}
	a.insertFree(&freeRange{offset: 0, size: span})
	return a
}

// Span reports the total span managed by the allocator.
func (a *RangeAllocator) Span() int64 { return a.span }

// Free reports the total free bytes (possibly non-contiguous).
func (a *RangeAllocator) Free() int64 { return a.free }

// Alloc reserves size bytes (rounded up to the granule) and returns the
// range's offset. Placement is best-fit: the smallest free range that can
// hold the request, lowest address on ties.
func (a *RangeAllocator) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("gpu: Alloc size %d", size)
	}
	size = roundUp(size, a.granule)
	probe := &freeRange{size: size, offset: -1}
	n := a.bySize.Ceil(probe)
	if n == nil {
		return 0, ErrSpaceExhausted
	}
	fr := n.Value
	a.removeFree(fr)
	offset := fr.offset
	if fr.size > size {
		a.insertFree(&freeRange{offset: fr.offset + size, size: fr.size - size})
	}
	a.free -= size
	return offset, nil
}

// FreeRange returns [offset, offset+size) to the allocator, coalescing with
// adjacent free ranges. Size is rounded up to the granule exactly as Alloc
// rounded it. Freeing an overlapping or unallocated range corrupts no state
// silently: overlaps with existing free ranges panic.
func (a *RangeAllocator) FreeRange(offset, size int64) {
	if size <= 0 || offset < 0 || offset+size > a.span {
		panic(fmt.Sprintf("gpu: FreeRange(%d, %d) out of span %d", offset, size, a.span))
	}
	size = roundUp(size, a.granule)
	nr := &freeRange{offset: offset, size: size}

	// Find potential neighbours: greatest free range starting at or before
	// offset, and the successor after it.
	var prev, next *freeRange
	if fn := a.byAddr.Floor(&freeRange{offset: offset}); fn != nil {
		prev = fn.Value
		if nn := a.byAddr.Next(fn); nn != nil {
			next = nn.Value
		}
	} else if fn := a.byAddr.Min(); fn != nil {
		next = fn.Value
	}
	if prev != nil && prev.offset+prev.size > offset {
		panic(fmt.Sprintf("gpu: double free / overlap at [%d,%d)", offset, offset+size))
	}
	if next != nil && offset+size > next.offset {
		panic(fmt.Sprintf("gpu: double free / overlap at [%d,%d)", offset, offset+size))
	}
	if prev != nil && prev.offset+prev.size == offset {
		a.removeFree(prev)
		nr.offset = prev.offset
		nr.size += prev.size
	}
	if next != nil && nr.offset+nr.size == next.offset {
		a.removeFree(next)
		nr.size += next.size
	}
	a.insertFree(nr)
	a.free += size
}

// FragmentCount reports the number of disjoint free ranges; used by tests to
// validate coalescing.
func (a *RangeAllocator) FragmentCount() int { return a.byAddr.Len() }

// LargestFree reports the size of the largest contiguous free range.
func (a *RangeAllocator) LargestFree() int64 {
	n := a.bySize.Max()
	if n == nil {
		return 0
	}
	return n.Value.size
}

func (a *RangeAllocator) insertFree(fr *freeRange) {
	fr.addrNode = a.byAddr.Insert(fr)
	fr.sizeNode = a.bySize.Insert(fr)
}

func (a *RangeAllocator) removeFree(fr *freeRange) {
	a.byAddr.Delete(fr.addrNode)
	a.bySize.Delete(fr.sizeNode)
	fr.addrNode, fr.sizeNode = nil, nil
}

func roundUp(n, g int64) int64 {
	if rem := n % g; rem != 0 {
		return n + g - rem
	}
	return n
}
