// Package cuda simulates the slice of the CUDA driver API that GMLake and
// the PyTorch caching allocator use: the native allocator (cudaMalloc /
// cudaFree) and the low-level virtual memory management (VMM) API
// (cuMemAddressReserve, cuMemCreate, cuMemMap, cuMemSetAccess and their
// teardown counterparts).
//
// Every call is priced by the sim.CostModel — calibrated to the paper's
// Table 1 and Figure 6 — and charged to a sim.Clock, so experiments measure
// allocation latency and end-to-end overhead in deterministic virtual time.
//
// Semantics follow the real driver where it matters to the paper:
//
//   - Physical memory handles (cuMemCreate) are reference-counted: a handle's
//     memory is released only once it has been cuMemRelease'd *and* every
//     mapping of it has been unmapped. GMLake depends on this to map the same
//     physical chunks from both a pBlock VA and one or more sBlock VAs.
//   - Virtual address reservations are contiguous and distinct; mappings must
//     land inside a reservation and may not overlap one another.
//   - Physical chunks are sized in multiples of the 2 MiB granularity.
package cuda

import (
	"errors"
	"fmt"

	"repro/internal/container"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// ChunkGranularity is the minimum physical allocation granularity of the VMM
// API (2 MiB on NVIDIA hardware).
const ChunkGranularity = 2 * sim.MiB

// DevicePtr is a device virtual address.
type DevicePtr uint64

// MemHandle names a physical memory allocation created with MemCreate.
type MemHandle int64

// Errors mirroring the driver's failure modes.
var (
	ErrOutOfMemory    = gpu.ErrOutOfMemory
	ErrInvalidValue   = errors.New("cuda: invalid value")
	ErrNotMapped      = errors.New("cuda: range not mapped")
	ErrAlreadyMapped  = errors.New("cuda: range already mapped")
	ErrInvalidHandle  = errors.New("cuda: invalid memory handle")
	ErrRangeNotFound  = errors.New("cuda: address range not reserved")
	ErrRangeStillUsed = errors.New("cuda: reservation still has mappings")
)

// Counters aggregates driver-call statistics; the harness reports them and
// the paper's "caching allocator is ~10x faster than native" observation is
// visible directly in the call counts.
type Counters struct {
	Malloc, Free                  int64
	AddressReserve, AddressFree   int64
	MemCreate, MemRelease         int64
	MemMap, MemUnmap, MemSet      int64
	BytesAllocated, BytesReleased int64
}

// Driver is one device's simulated driver context.
type Driver struct {
	dev   *gpu.Device
	clock *sim.Clock
	cost  *sim.CostModel

	counters Counters

	mallocs      map[DevicePtr]mallocAlloc
	reservations map[DevicePtr]*reservation
	resByAddr    *container.Tree[*reservation] // ordered by base for range lookup
	handles      map[MemHandle]*physical
	nextHandle   MemHandle
}

type mallocAlloc struct {
	size int64
	seg  gpu.SegmentID
}

type reservation struct {
	base     DevicePtr
	size     int64
	mappings *container.Tree[*mapping] // ordered by mapped address
	node     *container.Node[*reservation]
}

type mapping struct {
	addr   DevicePtr
	size   int64
	handle MemHandle
	access bool
	node   *container.Node[*mapping]
}

func newMappingTree() *container.Tree[*mapping] {
	return container.NewTree[*mapping](func(a, b *mapping) bool { return a.addr < b.addr })
}

type physical struct {
	id       MemHandle
	size     int64
	seg      gpu.SegmentID
	mapCount int
	released bool
}

// NewDriver creates a driver over dev, charging costs from model to clock.
func NewDriver(dev *gpu.Device, clock *sim.Clock, model *sim.CostModel) *Driver {
	return &Driver{
		dev:          dev,
		clock:        clock,
		cost:         model,
		mallocs:      make(map[DevicePtr]mallocAlloc),
		reservations: make(map[DevicePtr]*reservation),
		resByAddr: container.NewTree[*reservation](func(a, b *reservation) bool {
			return a.base < b.base
		}),
		handles: make(map[MemHandle]*physical),
	}
}

// Device returns the underlying simulated device.
func (d *Driver) Device() *gpu.Device { return d.dev }

// Clock returns the driver's virtual clock.
func (d *Driver) Clock() *sim.Clock { return d.clock }

// Cost returns the driver's cost model.
func (d *Driver) Cost() *sim.CostModel { return d.cost }

// Counters returns a snapshot of the driver-call statistics.
func (d *Driver) Counters() Counters { return d.counters }

// MemGetInfo reports free and total physical memory, like cuMemGetInfo.
func (d *Driver) MemGetInfo() (free, total int64) {
	return d.dev.FreeBytes(), d.dev.Capacity()
}

// Malloc is cudaMalloc: a contiguous device allocation with a device
// synchronization. The latency is charged even on failure, as on real
// hardware.
func (d *Driver) Malloc(size int64) (DevicePtr, error) {
	d.clock.Advance(d.cost.CudaMalloc(size))
	d.counters.Malloc++
	if size <= 0 {
		return 0, fmt.Errorf("%w: Malloc(%d)", ErrInvalidValue, size)
	}
	seg, err := d.dev.AllocPhysical(size)
	if err != nil {
		return 0, err
	}
	va, err := d.dev.ReserveVA(size)
	if err != nil {
		d.dev.FreePhysical(seg)
		return 0, err
	}
	ptr := DevicePtr(va)
	d.mallocs[ptr] = mallocAlloc{size: size, seg: seg}
	d.counters.BytesAllocated += size
	return ptr, nil
}

// Free is cudaFree.
func (d *Driver) Free(ptr DevicePtr) error {
	a, ok := d.mallocs[ptr]
	if !ok {
		return fmt.Errorf("%w: Free(%#x)", ErrInvalidValue, uint64(ptr))
	}
	d.clock.Advance(d.cost.CudaFree(a.size))
	d.counters.Free++
	d.counters.BytesReleased += a.size
	d.dev.FreePhysical(a.seg)
	d.dev.ReleaseVA(uint64(ptr), a.size)
	delete(d.mallocs, ptr)
	return nil
}

// MemAddressReserve reserves size bytes of contiguous virtual address space.
func (d *Driver) MemAddressReserve(size int64) (DevicePtr, error) {
	d.clock.Advance(d.cost.MemAddressReserve(size))
	d.counters.AddressReserve++
	if size <= 0 || size%ChunkGranularity != 0 {
		return 0, fmt.Errorf("%w: MemAddressReserve(%d): must be a positive multiple of %d",
			ErrInvalidValue, size, ChunkGranularity)
	}
	va, err := d.dev.ReserveVA(size)
	if err != nil {
		return 0, err
	}
	ptr := DevicePtr(va)
	r := &reservation{
		base:     ptr,
		size:     size,
		mappings: newMappingTree(),
	}
	r.node = d.resByAddr.Insert(r)
	d.reservations[ptr] = r
	return ptr, nil
}

// MemAddressFree releases a reservation. All mappings must be unmapped first.
func (d *Driver) MemAddressFree(ptr DevicePtr, size int64) error {
	r, ok := d.reservations[ptr]
	if !ok {
		return fmt.Errorf("%w: MemAddressFree(%#x)", ErrRangeNotFound, uint64(ptr))
	}
	if r.size != size {
		return fmt.Errorf("%w: MemAddressFree size %d != reserved %d", ErrInvalidValue, size, r.size)
	}
	if r.mappings.Len() != 0 {
		return fmt.Errorf("%w: %d mappings live", ErrRangeStillUsed, r.mappings.Len())
	}
	d.clock.Advance(d.cost.MemAddressFree(size))
	d.counters.AddressFree++
	d.dev.ReleaseVA(uint64(ptr), size)
	d.resByAddr.Delete(r.node)
	delete(d.reservations, ptr)
	return nil
}

// MemCreate allocates a physical memory chunk of the given size (a positive
// multiple of ChunkGranularity) and returns its handle.
func (d *Driver) MemCreate(size int64) (MemHandle, error) {
	d.clock.Advance(d.cost.MemCreate(size))
	d.counters.MemCreate++
	if size <= 0 || size%ChunkGranularity != 0 {
		return 0, fmt.Errorf("%w: MemCreate(%d): must be a positive multiple of %d",
			ErrInvalidValue, size, ChunkGranularity)
	}
	seg, err := d.dev.AllocPhysical(size)
	if err != nil {
		return 0, err
	}
	d.nextHandle++
	h := d.nextHandle
	d.handles[h] = &physical{id: h, size: size, seg: seg}
	d.counters.BytesAllocated += size
	return h, nil
}

// MemRelease drops the caller's reference to a physical handle. The memory is
// returned to the device once no mapping references it, per driver semantics.
func (d *Driver) MemRelease(h MemHandle) error {
	p, ok := d.handles[h]
	if !ok || p.released {
		return fmt.Errorf("%w: MemRelease(%d)", ErrInvalidHandle, h)
	}
	d.clock.Advance(d.cost.MemRelease(p.size))
	d.counters.MemRelease++
	p.released = true
	d.maybeReclaim(p)
	return nil
}

// MemMap maps the whole physical handle h at address ptr, which must lie
// inside a reservation with enough room and no overlapping mapping.
func (d *Driver) MemMap(ptr DevicePtr, h MemHandle) error {
	p, ok := d.handles[h]
	if !ok || p.released {
		return fmt.Errorf("%w: MemMap handle %d", ErrInvalidHandle, h)
	}
	r := d.findReservation(ptr, p.size)
	if r == nil {
		return fmt.Errorf("%w: MemMap(%#x, %d bytes)", ErrRangeNotFound, uint64(ptr), p.size)
	}
	// Overlap check against the nearest mappings on either side.
	if fn := r.mappings.Floor(&mapping{addr: ptr}); fn != nil {
		if m := fn.Value; ptr < m.addr+DevicePtr(m.size) {
			return fmt.Errorf("%w: [%#x,%#x)", ErrAlreadyMapped, uint64(ptr), uint64(ptr)+uint64(p.size))
		}
	}
	if cn := r.mappings.Ceil(&mapping{addr: ptr}); cn != nil {
		if m := cn.Value; m.addr < ptr+DevicePtr(p.size) {
			return fmt.Errorf("%w: [%#x,%#x)", ErrAlreadyMapped, uint64(ptr), uint64(ptr)+uint64(p.size))
		}
	}
	d.clock.Advance(d.cost.MemMap(p.size))
	d.counters.MemMap++
	m := &mapping{addr: ptr, size: p.size, handle: h}
	m.node = r.mappings.Insert(m)
	p.mapCount++
	return nil
}

// MemSetAccess enables access on [ptr, ptr+size), which must exactly cover
// one or more existing mappings.
func (d *Driver) MemSetAccess(ptr DevicePtr, size int64) error {
	r := d.findReservation(ptr, size)
	if r == nil {
		return fmt.Errorf("%w: MemSetAccess(%#x)", ErrRangeNotFound, uint64(ptr))
	}
	covered := int64(0)
	for n := r.mappings.Ceil(&mapping{addr: ptr}); n != nil; n = r.mappings.Next(n) {
		m := n.Value
		if m.addr+DevicePtr(m.size) > ptr+DevicePtr(size) {
			break
		}
		if !m.access {
			d.clock.Advance(d.cost.MemSetAccess(m.size))
			d.counters.MemSet++
			m.access = true
		}
		covered += m.size
	}
	if covered != size {
		return fmt.Errorf("%w: MemSetAccess covers %d of %d bytes", ErrNotMapped, covered, size)
	}
	return nil
}

// MemUnmap removes every mapping fully contained in [ptr, ptr+size).
func (d *Driver) MemUnmap(ptr DevicePtr, size int64) error {
	r := d.findReservation(ptr, size)
	if r == nil {
		return fmt.Errorf("%w: MemUnmap(%#x)", ErrRangeNotFound, uint64(ptr))
	}
	var victims []*mapping
	for n := r.mappings.Ceil(&mapping{addr: ptr}); n != nil; n = r.mappings.Next(n) {
		m := n.Value
		if m.addr+DevicePtr(m.size) > ptr+DevicePtr(size) {
			break
		}
		victims = append(victims, m)
	}
	if len(victims) == 0 {
		return fmt.Errorf("%w: MemUnmap(%#x, %d)", ErrNotMapped, uint64(ptr), size)
	}
	for _, m := range victims {
		d.clock.Advance(d.cost.MemUnmap(m.size))
		d.counters.MemUnmap++
		p := d.handles[m.handle]
		p.mapCount--
		r.mappings.Delete(m.node)
		d.maybeReclaim(p)
	}
	return nil
}

// MappedBytes reports the total bytes currently mapped across reservations
// (each mapping counted once; shared physical chunks counted per mapping).
func (d *Driver) MappedBytes() int64 {
	var total int64
	for _, r := range d.reservations {
		r.mappings.Ascend(func(n *container.Node[*mapping]) bool {
			total += n.Value.size
			return true
		})
	}
	return total
}

// LiveHandles reports physical handles whose memory is still held.
func (d *Driver) LiveHandles() int { return len(d.handles) }

func (d *Driver) maybeReclaim(p *physical) {
	if p.released && p.mapCount == 0 {
		d.dev.FreePhysical(p.seg)
		d.counters.BytesReleased += p.size
		delete(d.handles, p.id)
	}
}

func (d *Driver) findReservation(ptr DevicePtr, size int64) *reservation {
	n := d.resByAddr.Floor(&reservation{base: ptr})
	if n == nil {
		return nil
	}
	r := n.Value
	if ptr >= r.base && ptr+DevicePtr(size) <= r.base+DevicePtr(r.size) {
		return r
	}
	return nil
}
