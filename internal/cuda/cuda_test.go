package cuda

import (
	"errors"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
)

func newTestDriver(capacity int64) *Driver {
	dev := gpu.NewDevice("test", capacity)
	return NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
}

func TestMallocFree(t *testing.T) {
	d := newTestDriver(1 * sim.GiB)
	ptr, err := d.Malloc(256 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if free, total := d.MemGetInfo(); free != 768*sim.MiB || total != sim.GiB {
		t.Fatalf("MemGetInfo = %d/%d", free, total)
	}
	if err := d.Free(ptr); err != nil {
		t.Fatal(err)
	}
	if free, _ := d.MemGetInfo(); free != sim.GiB {
		t.Fatalf("free after Free = %d", free)
	}
	if err := d.Free(ptr); err == nil {
		t.Fatal("double Free succeeded")
	}
}

func TestMallocOOM(t *testing.T) {
	d := newTestDriver(100 * sim.MiB)
	if _, err := d.Malloc(200 * sim.MiB); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// Failed Malloc must not leak VA or physical.
	if free, _ := d.MemGetInfo(); free != 100*sim.MiB {
		t.Fatalf("free after failed malloc = %d", free)
	}
}

func TestMallocChargesClock(t *testing.T) {
	d := newTestDriver(4 * sim.GiB)
	before := d.Clock().Now()
	if _, err := d.Malloc(2 * sim.GiB); err != nil {
		t.Fatal(err)
	}
	elapsed := d.Clock().Now() - before
	// Calibration pin: cudaMalloc(2 GiB) = 1 ms.
	if elapsed != d.Cost().CudaMalloc(2*sim.GiB) {
		t.Fatalf("elapsed = %v, want %v", elapsed, d.Cost().CudaMalloc(2*sim.GiB))
	}
}

func TestVMMLifecycle(t *testing.T) {
	d := newTestDriver(1 * sim.GiB)
	const size = 10 * sim.MiB // 5 chunks of 2 MiB

	va, err := d.MemAddressReserve(size)
	if err != nil {
		t.Fatal(err)
	}
	var handles []MemHandle
	for i := int64(0); i < 5; i++ {
		h, err := d.MemCreate(ChunkGranularity)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.MemMap(va+DevicePtr(i*ChunkGranularity), h); err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := d.MemSetAccess(va, size); err != nil {
		t.Fatal(err)
	}
	if got := d.MappedBytes(); got != size {
		t.Fatalf("MappedBytes = %d, want %d", got, size)
	}
	if free, _ := d.MemGetInfo(); free != sim.GiB-size {
		t.Fatalf("free = %d", free)
	}

	// Release handles first: memory must stay until unmapped.
	for _, h := range handles {
		if err := d.MemRelease(h); err != nil {
			t.Fatal(err)
		}
	}
	if free, _ := d.MemGetInfo(); free != sim.GiB-size {
		t.Fatalf("free after release-before-unmap = %d, memory reclaimed too early", free)
	}
	if err := d.MemUnmap(va, size); err != nil {
		t.Fatal(err)
	}
	if free, _ := d.MemGetInfo(); free != sim.GiB {
		t.Fatalf("free after unmap = %d, want full capacity", free)
	}
	if err := d.MemAddressFree(va, size); err != nil {
		t.Fatal(err)
	}
	if d.LiveHandles() != 0 {
		t.Fatalf("LiveHandles = %d, want 0", d.LiveHandles())
	}
}

func TestVMMSharedMapping(t *testing.T) {
	// GMLake's core trick: the same physical chunk mapped from two VA
	// ranges (pBlock and sBlock). The chunk must survive until both
	// unmap, even after release.
	d := newTestDriver(1 * sim.GiB)
	h, err := d.MemCreate(ChunkGranularity)
	if err != nil {
		t.Fatal(err)
	}
	va1, _ := d.MemAddressReserve(ChunkGranularity)
	va2, _ := d.MemAddressReserve(ChunkGranularity)
	if err := d.MemMap(va1, h); err != nil {
		t.Fatal(err)
	}
	if err := d.MemMap(va2, h); err != nil {
		t.Fatal(err)
	}
	if err := d.MemRelease(h); err != nil {
		t.Fatal(err)
	}
	if err := d.MemUnmap(va1, ChunkGranularity); err != nil {
		t.Fatal(err)
	}
	if free, _ := d.MemGetInfo(); free == sim.GiB {
		t.Fatal("chunk reclaimed while still mapped from second VA")
	}
	if err := d.MemUnmap(va2, ChunkGranularity); err != nil {
		t.Fatal(err)
	}
	if free, _ := d.MemGetInfo(); free != sim.GiB {
		t.Fatalf("chunk not reclaimed after last unmap: free = %d", free)
	}
}

func TestVMMValidation(t *testing.T) {
	d := newTestDriver(1 * sim.GiB)

	if _, err := d.MemAddressReserve(sim.MiB); !errors.Is(err, ErrInvalidValue) {
		t.Errorf("Reserve(1MiB) err = %v, want ErrInvalidValue (not chunk multiple)", err)
	}
	if _, err := d.MemCreate(sim.MiB); !errors.Is(err, ErrInvalidValue) {
		t.Errorf("MemCreate(1MiB) err = %v, want ErrInvalidValue", err)
	}

	va, _ := d.MemAddressReserve(4 * sim.MiB)
	h, _ := d.MemCreate(2 * sim.MiB)
	if err := d.MemMap(va, h); err != nil {
		t.Fatal(err)
	}
	// Overlapping map of the same region must fail.
	h2, _ := d.MemCreate(2 * sim.MiB)
	if err := d.MemMap(va, h2); !errors.Is(err, ErrAlreadyMapped) {
		t.Errorf("overlapping MemMap err = %v, want ErrAlreadyMapped", err)
	}
	// Map outside any reservation must fail.
	if err := d.MemMap(DevicePtr(1<<48), h2); !errors.Is(err, ErrRangeNotFound) {
		t.Errorf("unreserved MemMap err = %v, want ErrRangeNotFound", err)
	}
	// AddressFree with live mappings must fail.
	if err := d.MemAddressFree(va, 4*sim.MiB); !errors.Is(err, ErrRangeStillUsed) {
		t.Errorf("MemAddressFree err = %v, want ErrRangeStillUsed", err)
	}
	// SetAccess over a hole must fail.
	if err := d.MemSetAccess(va, 4*sim.MiB); !errors.Is(err, ErrNotMapped) {
		t.Errorf("MemSetAccess over hole err = %v, want ErrNotMapped", err)
	}
	// Unmap of an unmapped region must fail.
	if err := d.MemUnmap(va+DevicePtr(2*sim.MiB), 2*sim.MiB); !errors.Is(err, ErrNotMapped) {
		t.Errorf("MemUnmap err = %v, want ErrNotMapped", err)
	}
	// Release twice must fail.
	if err := d.MemRelease(h2); err != nil {
		t.Fatal(err)
	}
	if err := d.MemRelease(h2); !errors.Is(err, ErrInvalidHandle) {
		t.Errorf("double MemRelease err = %v, want ErrInvalidHandle", err)
	}
	// Mapping a released handle must fail.
	if err := d.MemMap(va+DevicePtr(2*sim.MiB), h2); !errors.Is(err, ErrInvalidHandle) {
		t.Errorf("MemMap of released handle err = %v, want ErrInvalidHandle", err)
	}
}

func TestVMMCreateOOM(t *testing.T) {
	d := newTestDriver(4 * sim.MiB)
	h1, err := d.MemCreate(2 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.MemCreate(4 * sim.MiB); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	_ = h1
}

func TestTable1Breakdown(t *testing.T) {
	// Allocating 2 GiB via 2 MiB chunks must cost ~115x a 2 GiB cudaMalloc
	// (Table 1 / Figure 6 headline).
	d := newTestDriver(8 * sim.GiB)

	sw := sim.StartStopwatch(d.Clock())
	mptr, err := d.Malloc(2 * sim.GiB)
	if err != nil {
		t.Fatal(err)
	}
	nativeCost := sw.Elapsed()
	if err := d.Free(mptr); err != nil {
		t.Fatal(err)
	}

	sw = sim.StartStopwatch(d.Clock())
	va, err := d.MemAddressReserve(2 * sim.GiB)
	if err != nil {
		t.Fatal(err)
	}
	for off := int64(0); off < 2*sim.GiB; off += ChunkGranularity {
		h, err := d.MemCreate(ChunkGranularity)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.MemMap(va+DevicePtr(off), h); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.MemSetAccess(va, 2*sim.GiB); err != nil {
		t.Fatal(err)
	}
	vmmCost := sw.Elapsed()

	ratio := float64(vmmCost) / float64(nativeCost)
	if ratio < 100 || ratio > 130 {
		t.Fatalf("VMM/native ratio = %.1f, want ~115 (Table 1)", ratio)
	}
}

func TestCounters(t *testing.T) {
	d := newTestDriver(sim.GiB)
	ptr, _ := d.Malloc(2 * sim.MiB)
	_ = d.Free(ptr)
	va, _ := d.MemAddressReserve(2 * sim.MiB)
	h, _ := d.MemCreate(2 * sim.MiB)
	_ = d.MemMap(va, h)
	_ = d.MemSetAccess(va, 2*sim.MiB)
	_ = d.MemUnmap(va, 2*sim.MiB)
	_ = d.MemRelease(h)
	_ = d.MemAddressFree(va, 2*sim.MiB)

	c := d.Counters()
	want := Counters{
		Malloc: 1, Free: 1,
		AddressReserve: 1, AddressFree: 1,
		MemCreate: 1, MemRelease: 1,
		MemMap: 1, MemUnmap: 1, MemSet: 1,
		BytesAllocated: 4 * sim.MiB, BytesReleased: 4 * sim.MiB,
	}
	if c != want {
		t.Fatalf("Counters = %+v, want %+v", c, want)
	}
}
