package workload

import (
	"testing"

	"repro/internal/caching"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/recompute"
	"repro/internal/sim"
)

// The trainer sizes its persistent residents from first principles (per-layer
// shards); internal/parallel sizes them analytically (whole-model ZeRO
// breakdown). The two models were written independently — this test pins
// them against each other so neither drifts.
func TestTrainerPersistentMatchesZeROModel(t *testing.T) {
	for _, world := range []int{1, 4, 16} {
		spec := Spec{Model: model.OPT13B, Strategy: StrategyN, World: world, Batch: 1}
		clock := sim.NewClock()
		dev := gpu.NewDevice("x", 400*sim.GiB) // ample: we only measure setup
		alloc := caching.New(cuda.NewDriver(dev, clock, sim.DefaultCostModel()))
		tr, err := NewTrainer(spec, alloc, clock)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Setup(); err != nil {
			t.Fatalf("world %d: %v", world, err)
		}
		got := tr.PersistentBytes()
		tr.Teardown()

		state, err := parallel.ZeROState(model.OPT13B.Params(), world, parallel.Stage3)
		if err != nil {
			t.Fatal(err)
		}
		want := state.Total()
		// Per-layer shard rounding and the embedding's separate shard put
		// the two within a few percent, never a factor.
		ratio := float64(got) / float64(want)
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("world %d: trainer persists %s, ZeRO-3 model says %s (ratio %.3f)",
				world, sim.FormatBytes(got), sim.FormatBytes(want), ratio)
		}
	}
}

// The trainer's recomputation strategy and the recompute planner describe
// the same mechanism; their activation ceilings must agree in direction:
// checkpointed peak ≤ planner's √N peak bound ≤ store-all.
func TestTrainerRecomputeConsistentWithPlanner(t *testing.T) {
	cfg := model.OPT1_3B
	batch := 16
	m := recompute.ForModel(cfg, batch, 0, 0)
	storeAll := m.Evaluate(recompute.NoRecompute()).PeakBytes
	sqrtPlan, err := recompute.SqrtN(len(m.Layers))
	if err != nil {
		t.Fatal(err)
	}
	sqrtPeak := m.Evaluate(sqrtPlan).PeakBytes

	run := func(strategy Strategy) int64 {
		clock := sim.NewClock()
		dev := gpu.NewDevice("x", 200*sim.GiB)
		alloc := caching.New(cuda.NewDriver(dev, clock, sim.DefaultCostModel()))
		tr, err := NewTrainer(Spec{Model: cfg, Strategy: strategy, World: 1, Batch: batch}, alloc, clock)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Setup(); err != nil {
			t.Fatal(err)
		}
		persist := alloc.Stats().PeakActive
		for i := 0; i < 4; i++ {
			if err := tr.Step(); err != nil {
				t.Fatal(err)
			}
		}
		peak := alloc.Stats().PeakActive - persist // transient = activations etc.
		tr.Teardown()
		return peak
	}
	plain := run(StrategyN)
	ck := run(StrategyR)
	if ck >= plain {
		t.Fatalf("recomputation did not reduce transient peak: %s vs %s",
			sim.FormatBytes(ck), sim.FormatBytes(plain))
	}
	// Direction-consistency with the planner: the trainer's reduction factor
	// should be at least half of the planner's √N factor.
	plannerFactor := float64(storeAll) / float64(sqrtPeak)
	trainerFactor := float64(plain) / float64(ck)
	if trainerFactor < plannerFactor/4 {
		t.Fatalf("trainer reduction %.1fx far below planner's %.1fx", trainerFactor, plannerFactor)
	}
}
