// Package workload generates the allocation request streams of LLM
// fine-tuning, reproducing the stream characteristics the paper measures:
// regular, well-behaved allocation under plain data-parallel training, and
// increasingly frequent, smaller and more irregular requests as
// recomputation, LoRA, offloading and ZeRO-3 sharding are layered on
// (paper §2.3-§2.4, Figure 5).
//
// A Trainer drives a memalloc.Allocator through Setup (persistent parameter,
// gradient and optimizer state), repeated Steps (forward, backward,
// optimizer phases with realistic tensor lifetimes) and Teardown. Compute
// and communication time are charged to the simulated clock so throughput
// can be reported alongside memory.
package workload

import (
	"fmt"

	"repro/internal/model"
)

// Strategy is a combination of the paper's memory-efficient optimizations.
type Strategy struct {
	Recompute bool // gradient checkpointing (paper "R")
	LoRA      bool // low-rank adapters, frozen base model (paper "L")
	Offload   bool // optimizer state offloaded to CPU (paper "O")
}

// Strategy combinations evaluated in the paper's Figures 3 and 10.
var (
	StrategyN   = Strategy{}
	StrategyR   = Strategy{Recompute: true}
	StrategyLR  = Strategy{Recompute: true, LoRA: true}
	StrategyRO  = Strategy{Recompute: true, Offload: true}
	StrategyLRO = Strategy{Recompute: true, LoRA: true, Offload: true}
)

// Label renders the paper's shorthand: N, R, L, O and combinations like LRO.
func (s Strategy) Label() string {
	if s == (Strategy{}) {
		return "N"
	}
	out := ""
	if s.LoRA {
		out += "L"
	}
	if s.Recompute {
		out += "R"
	}
	if s.Offload {
		out += "O"
	}
	return out
}

// Irregularity scores how much allocation dynamism this strategy
// combination induces (paper Observation 1): 0 for plain training, which
// replays identical shapes every iteration, rising with each optimization.
// The trainer derives its shape-bucket count and asynchronous-release
// windows from the individual flags; this scalar is the ordering tests and
// reports use.
func (s Strategy) Irregularity() float64 {
	spread := 0.0
	if s.Recompute {
		spread += 0.10
	}
	if s.LoRA {
		spread += 0.05
	}
	if s.Offload {
		spread += 0.12
	}
	return spread
}

// Platform is the distributed-training framework profile (paper Table 2).
// Frameworks differ, for the allocator's purposes, in how much parameter
// material one gather step materializes.
type Platform int

// Platforms evaluated in the paper.
const (
	// DeepSpeed (ZeRO-3): gathers one transformer block at a time.
	DeepSpeed Platform = iota
	// FSDP: wraps and gathers two blocks per FlatParameter unit.
	FSDP
	// ColossalAI: chunk-based gathering with fixed-size chunks.
	ColossalAI
)

// String implements fmt.Stringer.
func (p Platform) String() string {
	switch p {
	case DeepSpeed:
		return "DeepSpeed"
	case FSDP:
		return "FSDP"
	case ColossalAI:
		return "Colossal-AI"
	default:
		return fmt.Sprintf("Platform(%d)", int(p))
	}
}

// gatherLayers returns how many transformer blocks one gather materializes.
func (p Platform) gatherLayers() int {
	if p == FSDP {
		return 2
	}
	return 1
}

// Spec fully describes one workload.
type Spec struct {
	Model    model.Config
	Strategy Strategy
	Platform Platform
	World    int // data-parallel GPUs (ZeRO-3 shard count)
	Batch    int // per-GPU micro-batch in samples
	SeqLen   int // 0 → model default
	Seed     uint64

	// LoRARank is the adapter rank; 0 → 16.
	LoRARank int
}

// Normalize fills defaults and validates.
func (s Spec) Normalize() (Spec, error) {
	if s.World <= 0 {
		s.World = 1
	}
	if s.Batch <= 0 {
		return s, fmt.Errorf("workload: batch %d", s.Batch)
	}
	if s.SeqLen == 0 {
		s.SeqLen = s.Model.SeqLen
	}
	if s.SeqLen <= 0 {
		return s, fmt.Errorf("workload: seq len %d", s.SeqLen)
	}
	if s.LoRARank == 0 {
		s.LoRARank = 16
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if err := s.Model.FitsSanity(); err != nil {
		return s, err
	}
	return s, nil
}

// String renders "OPT-13B/LR/DeepSpeed w4 b20".
func (s Spec) String() string {
	return fmt.Sprintf("%s/%s/%s w%d b%d", s.Model.Name, s.Strategy.Label(), s.Platform, s.World, s.Batch)
}
