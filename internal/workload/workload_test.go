package workload

import (
	"errors"
	"testing"

	"repro/internal/caching"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestStrategyLabels(t *testing.T) {
	tests := []struct {
		s    Strategy
		want string
	}{
		{StrategyN, "N"},
		{StrategyR, "R"},
		{StrategyLR, "LR"},
		{StrategyRO, "RO"},
		{StrategyLRO, "LRO"},
		{Strategy{LoRA: true}, "L"},
		{Strategy{Offload: true}, "O"},
	}
	for _, tt := range tests {
		if got := tt.s.Label(); got != tt.want {
			t.Errorf("Label() = %q, want %q", got, tt.want)
		}
	}
}

func TestStrategyIrregularityMonotone(t *testing.T) {
	if StrategyN.Irregularity() != 0 {
		t.Fatal("plain training must be regular")
	}
	if !(StrategyLRO.Irregularity() > StrategyLR.Irregularity()) {
		t.Fatal("LRO must be more irregular than LR")
	}
	if !(StrategyLR.Irregularity() > StrategyR.Irregularity()) {
		t.Fatal("LR must be more irregular than R")
	}
}

func TestPlatformString(t *testing.T) {
	if DeepSpeed.String() != "DeepSpeed" || FSDP.String() != "FSDP" || ColossalAI.String() != "Colossal-AI" {
		t.Fatal("platform names wrong")
	}
	if FSDP.gatherLayers() != 2 || DeepSpeed.gatherLayers() != 1 {
		t.Fatal("gather unit wrong")
	}
}

func TestSpecNormalize(t *testing.T) {
	s := Spec{Model: model.OPT1_3B, Batch: 4}
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.World != 1 || n.SeqLen != model.OPT1_3B.SeqLen || n.LoRARank != 16 || n.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", n)
	}
	if _, err := (Spec{Model: model.OPT1_3B}).Normalize(); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func newHarness(capacity int64) (memalloc.Allocator, *sim.Clock) {
	dev := gpu.NewDevice("test", capacity)
	clock := sim.NewClock()
	drv := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	return caching.New(drv), clock
}

func TestSetupPersistentBytes(t *testing.T) {
	// Full fine-tuning persists ~16 bytes/param sharded; LoRA+offload only
	// the fp16 parameters plus tiny adapters.
	alloc, clock := newHarness(300 * sim.GiB)
	full, err := NewTrainer(Spec{Model: model.OPT13B, Strategy: StrategyN, World: 4, Batch: 1}, alloc, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Setup(); err != nil {
		t.Fatal(err)
	}
	params := model.OPT13B.Params()
	want := params * 16 / 4 // fp16 params + fp16 grads + fp32 Adam, ZeRO-3 over 4
	got := full.PersistentBytes()
	if ratio := float64(got) / float64(want); ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("full fine-tune persistent = %d, want ~%d", got, want)
	}
	full.Teardown()

	lora, err := NewTrainer(Spec{Model: model.OPT13B, Strategy: StrategyLRO, World: 4, Batch: 1}, alloc, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := lora.Setup(); err != nil {
		t.Fatal(err)
	}
	wantLoRA := params * 2 / 4 // fp16 params only (optimizer offloaded, adapters tiny)
	gotLoRA := lora.PersistentBytes()
	if ratio := float64(gotLoRA) / float64(wantLoRA); ratio < 0.95 || ratio > 1.10 {
		t.Fatalf("LRO persistent = %d, want ~%d", gotLoRA, wantLoRA)
	}
	lora.Teardown()
}

func TestStepBalancesAllocations(t *testing.T) {
	alloc, clock := newHarness(80 * sim.GiB)
	tr, err := NewTrainer(Spec{Model: model.OPT1_3B, Strategy: StrategyLRO, World: 4, Batch: 8}, alloc, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Setup(); err != nil {
		t.Fatal(err)
	}
	persistent := alloc.Stats().Active
	for i := 0; i < 5; i++ {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
		if got := alloc.Stats().Active; got != persistent {
			t.Fatalf("step %d leaked: active %d, want %d", i, got, persistent)
		}
	}
	tr.Teardown()
	if got := alloc.Stats().Active; got != 0 {
		t.Fatalf("teardown leaked %d bytes", got)
	}
}

func TestStepAdvancesClock(t *testing.T) {
	alloc, clock := newHarness(80 * sim.GiB)
	tr, _ := NewTrainer(Spec{Model: model.OPT1_3B, Strategy: StrategyN, World: 4, Batch: 8}, alloc, clock)
	if err := tr.Setup(); err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	if err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now() - before
	if elapsed < tr.EstimatedStepCompute() {
		t.Fatalf("step took %v, below compute lower bound %v", elapsed, tr.EstimatedStepCompute())
	}
	if elapsed > 20*tr.EstimatedStepCompute() {
		t.Fatalf("step took %v, absurd vs compute %v", elapsed, tr.EstimatedStepCompute())
	}
	tr.Teardown()
}

func TestOOMCleanup(t *testing.T) {
	// A device too small for the activations: Step must fail with OOM and
	// free every transient, leaving only persistent state.
	alloc, clock := newHarness(6 * sim.GiB)
	tr, _ := NewTrainer(Spec{Model: model.OPT1_3B, Strategy: StrategyN, World: 4, Batch: 64}, alloc, clock)
	if err := tr.Setup(); err != nil {
		t.Fatalf("setup should fit: %v", err)
	}
	persistent := alloc.Stats().Active
	err := tr.Step()
	if !errors.Is(err, cuda.ErrOutOfMemory) {
		t.Fatalf("Step err = %v, want OOM", err)
	}
	if got := alloc.Stats().Active; got != persistent {
		t.Fatalf("transients leaked after OOM: %d vs %d", got, persistent)
	}
	if tr.Steps() != 0 {
		t.Fatal("failed step counted")
	}
	tr.Teardown()
	if alloc.Stats().Active != 0 {
		t.Fatal("teardown after OOM leaked")
	}
}

func TestSetupOOM(t *testing.T) {
	alloc, clock := newHarness(1 * sim.GiB)
	tr, _ := NewTrainer(Spec{Model: model.OPT13B, Strategy: StrategyN, World: 1, Batch: 1}, alloc, clock)
	if err := tr.Setup(); !errors.Is(err, cuda.ErrOutOfMemory) {
		t.Fatalf("Setup err = %v, want OOM", err)
	}
	tr.Teardown()
	if alloc.Stats().Active != 0 {
		t.Fatal("partial setup leaked")
	}
}

// recordStream records the allocation stream of n steps of spec.
func recordStream(t *testing.T, spec Spec, capacity int64, n int) *trace.Trace {
	t.Helper()
	dev := gpu.NewDevice("test", capacity)
	clock := sim.NewClock()
	drv := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	rec := trace.NewRecorder(caching.New(drv), clock)
	tr, err := NewTrainer(spec, rec, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Setup(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	tr.Teardown()
	return rec.Trace()
}

func TestStreamDeterminism(t *testing.T) {
	spec := Spec{Model: model.OPT1_3B, Strategy: StrategyLRO, World: 4, Batch: 8, Seed: 42}
	a := recordStream(t, spec, 80*sim.GiB, 4)
	b := recordStream(t, spec, 80*sim.GiB, 4)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("streams diverge at event %d: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

func TestStreamIndependentOfAllocator(t *testing.T) {
	// The trainer must emit the same requests regardless of backing
	// allocator; otherwise comparisons would be apples to oranges.
	spec := Spec{Model: model.OPT1_3B, Strategy: StrategyLR, World: 4, Batch: 8, Seed: 9}
	viaCaching := recordStream(t, spec, 80*sim.GiB, 3)

	dev := gpu.NewDevice("test", 80*sim.GiB)
	clock := sim.NewClock()
	drv := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	rec := trace.NewRecorder(core.NewDefault(drv), clock)
	tr, err := NewTrainer(spec, rec, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Setup(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	tr.Teardown()
	viaGMLake := rec.Trace()

	if len(viaCaching.Events) != len(viaGMLake.Events) {
		t.Fatalf("stream lengths differ by allocator: %d vs %d",
			len(viaCaching.Events), len(viaGMLake.Events))
	}
	for i := range viaCaching.Events {
		a, b := viaCaching.Events[i], viaGMLake.Events[i]
		if a.Op != b.Op || a.ID != b.ID || a.Size != b.Size {
			t.Fatalf("request %d differs by allocator: %+v vs %+v", i, a, b)
		}
	}
}

func TestPlainTrainingIsRegular(t *testing.T) {
	// With strategy N the request stream must repeat exactly step to step:
	// total allocations are setup + steps * perStep.
	spec := Spec{Model: model.OPT1_3B, Strategy: StrategyN, World: 4, Batch: 8, Seed: 5}
	setup := countAllocs(recordStream(t, spec, 80*sim.GiB, 0))
	one := countAllocs(recordStream(t, spec, 80*sim.GiB, 1))
	three := countAllocs(recordStream(t, spec, 80*sim.GiB, 3))
	perStep := one - setup
	if perStep <= 0 {
		t.Fatalf("per-step allocations = %d", perStep)
	}
	if got, want := three-setup, 3*perStep; got != want {
		t.Fatalf("3 steps made %d allocations, want %d (stream not regular)", got, want)
	}
}

func countAllocs(tr *trace.Trace) int64 {
	var n int64
	for _, ev := range tr.Events {
		if ev.Op == trace.OpAlloc {
			n++
		}
	}
	return n
}

func TestIrregularStrategiesAllocateMore(t *testing.T) {
	// Paper Figure 5: optimization strategies make requests more frequent
	// and smaller.
	plain := recordStream(t, Spec{Model: model.OPT1_3B, Strategy: StrategyN, World: 4, Batch: 8, Seed: 5}, 80*sim.GiB, 4)
	lr := recordStream(t, Spec{Model: model.OPT1_3B, Strategy: StrategyLR, World: 4, Batch: 8, Seed: 5}, 80*sim.GiB, 4)
	ps, ls := plain.Stats(), lr.Stats()
	if ls.Allocs <= ps.Allocs {
		t.Fatalf("LR allocs %d not greater than plain %d", ls.Allocs, ps.Allocs)
	}
	if ls.MeanBytes >= ps.MeanBytes {
		t.Fatalf("LR mean size %d not smaller than plain %d", ls.MeanBytes, ps.MeanBytes)
	}
}

func TestComputeModelScaling(t *testing.T) {
	c1 := computeModel{spec: Spec{Model: model.OPT13B, World: 1, Batch: 8, SeqLen: 512}}
	c4 := computeModel{spec: Spec{Model: model.OPT13B, World: 4, Batch: 8, SeqLen: 512}}
	if c1.gatherTime(sim.GiB) != 0 {
		t.Fatal("single-GPU gather should be free")
	}
	if c4.gatherTime(sim.GiB) <= 0 {
		t.Fatal("multi-GPU gather should cost time")
	}
	// Backward costs more than forward; recompute makes it costlier still.
	fwd := c4.layerForward(512)
	bwd := c4.layerBackward(512)
	if bwd <= fwd {
		t.Fatal("backward not more expensive than forward")
	}
	cR := computeModel{spec: Spec{Model: model.OPT13B, World: 4, Batch: 8, SeqLen: 512, Strategy: StrategyR}}
	if cR.layerBackward(512) <= bwd {
		t.Fatal("recompute backward not more expensive")
	}
}

func TestSeqBucketsRecur(t *testing.T) {
	alloc, clock := newHarness(80 * sim.GiB)
	tr, _ := NewTrainer(Spec{Model: model.OPT1_3B, Strategy: StrategyLR, World: 4, Batch: 4, Seed: 3}, alloc, clock)
	seen := map[int]int{}
	for i := 0; i < 200; i++ {
		seen[tr.stepSeq()]++
	}
	if len(seen) != tr.variantCount() {
		t.Fatalf("got %d distinct sequence buckets, want %d", len(seen), tr.variantCount())
	}
	for seq, n := range seen {
		if n < 20 {
			t.Fatalf("bucket %d drawn only %d of 200 times", seq, n)
		}
	}
}

func TestDoubleSetupRejected(t *testing.T) {
	alloc, clock := newHarness(80 * sim.GiB)
	tr, _ := NewTrainer(Spec{Model: model.OPT1_3B, World: 4, Batch: 1}, alloc, clock)
	if err := tr.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Setup(); err == nil {
		t.Fatal("second Setup accepted")
	}
	tr.Teardown()
	if err := tr.Step(); err == nil {
		t.Fatal("Step after Teardown accepted")
	}
}
