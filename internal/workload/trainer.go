package workload

import (
	"fmt"
	"time"

	"repro/internal/memalloc"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
)

// Trainer drives one allocator through the allocation stream of fine-tuning
// one model under one Spec. It models the tensor lifetimes that matter to
// the allocator:
//
//   - Persistent state from Setup: fp16 parameter shards, gradient shards
//     and Adam state shards (ZeRO-3 partitioned across the world; optimizer
//     state absent with Offload, adapter-only with LoRA).
//   - Per-step forward: one all-gathered full parameter group per platform
//     gather unit (double-buffered, freed as the next arrives), plus either
//     full saved activations or checkpoints + transient working buffers.
//   - Per-step backward: gathers again, recomputes when checkpointing,
//     allocates transient activation gradients and full weight gradients
//     (reduce-scattered and freed), releases saved activations layer by
//     layer.
//   - Optimizer phase: in-place update, or PCIe-staged buffers with Offload.
//
// Transient tensor sizes and the per-step sequence length are drawn from
// small recurring bucket sets whose cardinality grows with the strategy's
// complexity, and logically-dead transients linger in a bounded asynchronous
// release window — reproducing the paper's observation that these strategies
// make the request stream frequent, small and irregular, while preserving
// the shape recurrence that real training exhibits.
type Trainer struct {
	spec    Spec
	alloc   memalloc.Allocator
	clock   *sim.Clock
	rng     *sim.RNG // draws each step's shape bucket
	compute computeModel

	// stepRNG drives all within-step choices (size variants, async release
	// order). It is reseeded from the step's shape bucket so that steps with
	// the same bucket replay byte-identical request streams: the recurrence
	// GMLake's stitched-block cache converges on (§5.4), while the caching
	// allocator still pays each bucket's worst-case packing.
	stepRNG *sim.RNG

	// Persistent buffers (Setup → Teardown).
	persistent []*memalloc.Buffer

	// Per-step live buffers, tracked for cleanup on OOM.
	stepLive map[*memalloc.Buffer]struct{}

	// deferred holds transient buffers whose free is delayed, modelling the
	// asynchronous, out-of-order releases that offloading and multi-stream
	// execution introduce. Deferred buffers pin addresses while logically
	// dead — the interleaving that fragments the caching allocator.
	deferred []*memalloc.Buffer

	timeline  *metrics.Timeline
	steps     int
	setupDone bool
}

// NewTrainer builds a trainer for spec over alloc, charging time to clock.
func NewTrainer(spec Spec, alloc memalloc.Allocator, clock *sim.Clock) (*Trainer, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	return &Trainer{
		spec:     spec,
		alloc:    alloc,
		clock:    clock,
		rng:      sim.NewRNG(spec.Seed),
		compute:  computeModel{spec: spec},
		stepLive: make(map[*memalloc.Buffer]struct{}),
	}, nil
}

// Spec returns the trainer's normalized spec.
func (t *Trainer) Spec() Spec { return t.spec }

// Steps returns the number of completed steps.
func (t *Trainer) Steps() int { return t.steps }

// SetTimeline attaches a timeline that records (time, active, reserved)
// samples at phase boundaries.
func (t *Trainer) SetTimeline(tl *metrics.Timeline) { t.timeline = tl }

func (t *Trainer) sample() {
	if t.timeline == nil {
		return
	}
	st := t.alloc.Stats()
	t.timeline.Record(t.clock.Now(), st.Active, st.Reserved)
}

// Setup allocates the persistent training state.
func (t *Trainer) Setup() error {
	if t.setupDone {
		return fmt.Errorf("workload: Setup called twice")
	}
	s := t.spec
	m := s.Model
	world := s.World

	// fp16 parameter shards, one per block plus the embedding.
	for l := 0; l < m.Layers; l++ {
		if err := t.persist(model.ShardBytes(m.LayerParamBytes(), world)); err != nil {
			return err
		}
	}
	if err := t.persist(model.ShardBytes(m.EmbeddingBytes(), world)); err != nil {
		return err
	}

	if s.Strategy.LoRA {
		// Adapter parameters, gradients and optimizer state: two rank-r
		// matrices per attention and MLP projection, per layer. Small.
		adapterBytes := t.adapterBytesPerLayer()
		for l := 0; l < m.Layers; l++ {
			if err := t.persist(adapterBytes); err != nil { // weights
				return err
			}
			if err := t.persist(adapterBytes); err != nil { // grads
				return err
			}
			if !s.Strategy.Offload {
				if err := t.persist(adapterBytes * 6); err != nil { // fp32 Adam
					return err
				}
			}
		}
	} else {
		// Full fine-tuning: fp16 gradient shards and fp32 Adam shards.
		for l := 0; l < m.Layers; l++ {
			if err := t.persist(model.ShardBytes(m.LayerParamBytes(), world)); err != nil {
				return err
			}
		}
		if err := t.persist(model.ShardBytes(m.EmbeddingBytes(), world)); err != nil {
			return err
		}
		if !s.Strategy.Offload {
			optBytes := model.ShardBytes(m.LayerParams()*model.OptimBytesPerParam, world)
			for l := 0; l < m.Layers; l++ {
				if err := t.persist(optBytes); err != nil {
					return err
				}
			}
			if err := t.persist(model.ShardBytes(m.EmbeddingParams()*model.OptimBytesPerParam, world)); err != nil {
				return err
			}
		}
	}
	t.setupDone = true
	t.sample()
	return nil
}

func (t *Trainer) persist(size int64) error {
	b, err := t.alloc.Alloc(size)
	if err != nil {
		return fmt.Errorf("workload: setup: %w", err)
	}
	t.persistent = append(t.persistent, b)
	return nil
}

func (t *Trainer) adapterBytesPerLayer() int64 {
	m := t.spec.Model
	// Four projection sites per block, each with down (H×r) and up (r×H).
	return int64(4*2*t.spec.LoRARank) * int64(m.Hidden) * model.DTypeBytes
}

// stepAlloc allocates a per-step transient buffer, tracking it for OOM
// cleanup.
func (t *Trainer) stepAlloc(size int64) (*memalloc.Buffer, error) {
	b, err := t.alloc.Alloc(size)
	if err != nil {
		return nil, err
	}
	t.stepLive[b] = struct{}{}
	return b, nil
}

func (t *Trainer) stepFree(b *memalloc.Buffer) {
	delete(t.stepLive, b)
	t.alloc.Free(b)
}

// abortStep frees every step-transient buffer after an OOM.
func (t *Trainer) abortStep() {
	t.deferred = t.deferred[:0]
	for b := range t.stepLive {
		t.alloc.Free(b)
		delete(t.stepLive, b)
	}
}

// deferWindow is how many logically-dead transient buffers stay pinned
// awaiting their asynchronous release. Plain synchronous training frees
// immediately; each optimization adds asynchrony (offloading most of all).
func (t *Trainer) deferWindow() int {
	w := 0
	if t.spec.Strategy.Recompute {
		w += 8
	}
	if t.spec.Strategy.LoRA {
		w += 4
	}
	if t.spec.Strategy.Offload {
		w += 12
	}
	return w
}

// deferFree releases b now under synchronous execution, or queues it and
// releases an arbitrary older deferred buffer once the window is full.
func (t *Trainer) deferFree(b *memalloc.Buffer) {
	w := t.deferWindow()
	if w == 0 {
		t.stepFree(b)
		return
	}
	t.deferred = append(t.deferred, b)
	for len(t.deferred) > w {
		// Releases complete out of order: drop a pseudo-random pending one.
		i := t.stepRNG.Intn(len(t.deferred))
		t.stepFree(t.deferred[i])
		t.deferred = append(t.deferred[:i], t.deferred[i+1:]...)
	}
}

// drainDeferred completes all pending asynchronous releases (a stream
// synchronization point).
func (t *Trainer) drainDeferred() {
	for _, b := range t.deferred {
		t.stepFree(b)
	}
	t.deferred = t.deferred[:0]
}

// sizeVariantFactors are the recurring scale factors applied to transient
// buffers (working sets, offload staging buckets). Real training shapes
// recur from a finite vocabulary — dynamic batching buckets, bucketed
// gradient fusion — rather than varying continuously; the allocator sees a
// diverse but repeating size-class population. The diversity is what
// fragments the caching allocator (each class pins its own segments at its
// own peak), while the recurrence is what lets GMLake's stitched-block cache
// converge (paper §5.4).
var sizeVariantFactors = []float64{1.0, 1.125, 0.875, 1.25}

// sizeVariant picks a recurring variant of a transient size.
func (t *Trainer) sizeVariant(size int64) int64 {
	n := t.variantCount()
	if n <= 1 {
		return size
	}
	f := sizeVariantFactors[t.stepRNG.Intn(n)]
	return sim.RoundUp(int64(f*float64(size)), 512)
}

// variantCount maps strategy complexity to size-class diversity: each
// optimization adds one recurring variant (paper Observation 1).
func (t *Trainer) variantCount() int {
	n := 1
	if t.spec.Strategy.Recompute {
		n++
	}
	if t.spec.Strategy.LoRA {
		n++
	}
	if t.spec.Strategy.Offload {
		n++
	}
	return n
}

// seqBucketFactors are the recurring sequence-length buckets of dynamic
// batching.
var seqBucketFactors = []float64{1.0, 0.875, 0.75, 0.625}

// stepSeq returns this step's sequence length: fixed for plain training
// (batches padded to maximum length), drawn from recurring buckets when any
// optimization enables dynamic shapes.
func (t *Trainer) stepSeq() int {
	base := t.spec.SeqLen
	n := t.variantCount()
	if n <= 1 {
		t.stepRNG = sim.NewRNG(t.spec.Seed)
		return base
	}
	bucket := t.rng.Intn(n)
	// Same bucket => same within-step stream, across all steps.
	t.stepRNG = sim.NewRNG(t.spec.Seed ^ (uint64(bucket)+1)*0x9e3779b97f4a7c15)
	f := seqBucketFactors[bucket]
	seq := int(f * float64(base))
	seq -= seq % 16
	if seq < 16 {
		seq = 16
	}
	return seq
}

// Step runs one training iteration. On out-of-memory every step-transient
// buffer is freed and the error returned; persistent state stays valid so
// the harness can report OOM and tear down cleanly.
func (t *Trainer) Step() error {
	if !t.setupDone {
		return fmt.Errorf("workload: Step before Setup")
	}
	if err := t.step(); err != nil {
		t.abortStep()
		return err
	}
	t.steps++
	return nil
}

func (t *Trainer) step() error {
	s := t.spec
	m := s.Model
	seq := t.stepSeq()

	saved := make([]*memalloc.Buffer, 0, m.Layers) // activations or checkpoints
	adapterActs := make([]*memalloc.Buffer, 0, m.Layers)

	// ---- Forward ----
	var gathered *memalloc.Buffer
	gatherUnit := s.Platform.gatherLayers()
	gatherBytes := m.LayerParamBytes() * int64(gatherUnit)
	if s.Platform == ColossalAI {
		// Chunk-based: gathers happen in fixed 64 MiB chunks; the unit
		// materialized per block is rounded up to whole chunks.
		gatherBytes = sim.RoundUp(m.LayerParamBytes(), 64*sim.MiB)
	}

	for l := 0; l < m.Layers; l++ {
		// All-gather the parameter group (ZeRO-3). Double-buffered:
		// allocate the next group before freeing the previous.
		if l%gatherUnit == 0 && s.World > 1 {
			next, err := t.stepAlloc(gatherBytes)
			if err != nil {
				return err
			}
			t.clock.Advance(t.compute.gatherTime(gatherBytes))
			if gathered != nil {
				t.stepFree(gathered)
			}
			gathered = next
		}

		if s.Strategy.Recompute {
			// Keep only the checkpoint; working activations are
			// transient inside the layer.
			ck, err := t.stepAlloc(m.CheckpointBytesPerLayer(s.Batch, seq))
			if err != nil {
				return err
			}
			saved = append(saved, ck)
			if err := t.transientWorkingSet(seq, 4); err != nil {
				return err
			}
		} else {
			act, err := t.stepAlloc(m.ActivationBytesPerLayer(s.Batch, seq))
			if err != nil {
				return err
			}
			saved = append(saved, act)
		}

		if s.Strategy.LoRA {
			// Adapter input activations are retained for the adapter
			// backward; two small tensors per block.
			aa, err := t.stepAlloc(t.loraActBytes(seq))
			if err != nil {
				return err
			}
			adapterActs = append(adapterActs, aa)
		}
		t.clock.Advance(t.compute.layerForward(seq))
	}
	if gathered != nil {
		t.stepFree(gathered)
		gathered = nil
	}
	t.sample()

	// LM head: logits plus a softmax/loss temporary of the same size.
	logits, err := t.stepAlloc(m.LogitsBytes(s.Batch, seq))
	if err != nil {
		return err
	}
	lossTmp, err := t.stepAlloc(m.LogitsBytes(s.Batch, seq))
	if err != nil {
		return err
	}
	t.clock.Advance(t.compute.headTime(seq))
	t.deferFree(lossTmp)

	// ---- Backward ----
	// Gradient w.r.t. logits replaces the logits buffer.
	dlogits, err := t.stepAlloc(m.LogitsBytes(s.Batch, seq))
	if err != nil {
		return err
	}
	t.stepFree(logits)

	// Flowing activation gradient, double-buffered across layers.
	gradBytes := int64(s.Batch) * int64(seq) * int64(m.Hidden) * model.DTypeBytes
	dflow, err := t.stepAlloc(gradBytes)
	if err != nil {
		return err
	}
	t.stepFree(dlogits)

	for l := m.Layers - 1; l >= 0; l-- {
		if l%gatherUnit == 0 && s.World > 1 {
			next, err := t.stepAlloc(gatherBytes)
			if err != nil {
				return err
			}
			t.clock.Advance(t.compute.gatherTime(gatherBytes))
			if gathered != nil {
				t.stepFree(gathered)
			}
			gathered = next
		}

		if s.Strategy.Recompute {
			// Recompute the layer's activations before differentiating.
			if err := t.transientWorkingSet(seq, 4); err != nil {
				return err
			}
		}

		// Next flowing gradient (output of this layer's backward).
		dnext, err := t.stepAlloc(gradBytes)
		if err != nil {
			return err
		}

		if s.Strategy.LoRA {
			// Adapter gradients: small transient pair, reduced into the
			// persistent adapter grad buffers.
			ag, err := t.stepAlloc(t.adapterBytesPerLayer())
			if err != nil {
				return err
			}
			t.clock.Advance(t.compute.reduceTime(t.adapterBytesPerLayer()))
			t.deferFree(ag)
			t.deferFree(adapterActs[l])
		} else {
			// Full weight gradients for the gathered group, then
			// reduce-scatter into the shard and free.
			wg, err := t.stepAlloc(m.LayerParamBytes())
			if err != nil {
				return err
			}
			t.clock.Advance(t.compute.reduceTime(m.LayerParamBytes()))
			t.deferFree(wg)
		}

		// Saved activations / checkpoint for this layer are now consumed.
		t.stepFree(saved[l])
		t.stepFree(dflow)
		dflow = dnext
		t.clock.Advance(t.compute.layerBackward(seq))
	}
	t.stepFree(dflow)
	if gathered != nil {
		t.stepFree(gathered)
	}
	t.sample()

	// ---- Optimizer ----
	if s.Strategy.Offload {
		// ZeRO-Offload: gradients stream to host, updated parameters
		// stream back through per-layer staging buffers whose bucket
		// sizes vary with accumulated padding.
		stageBase := model.ShardBytes(m.LayerParamBytes(), s.World)
		if s.Strategy.LoRA {
			stageBase = t.adapterBytesPerLayer()
		}
		for l := 0; l < m.Layers; l++ {
			stage, err := t.stepAlloc(t.sizeVariant(stageBase * 2))
			if err != nil {
				return err
			}
			t.clock.Advance(t.compute.offloadTime(stageBase * 2))
			t.deferFree(stage)
		}
	} else {
		params := m.Params() / int64(s.World)
		if s.Strategy.LoRA {
			params = int64(m.Layers) * t.adapterBytesPerLayer() / model.DTypeBytes
		}
		t.clock.Advance(t.compute.optimizerTime(params))
	}
	t.drainDeferred()
	t.sample()
	return nil
}

// transientWorkingSet allocates and frees n working tensors covering one
// layer's recomputed activations — the frequent small churn recomputation
// introduces (paper §2.3).
func (t *Trainer) transientWorkingSet(seq, n int) error {
	m := t.spec.Model
	total := m.ActivationBytesPerLayer(t.spec.Batch, seq)
	bufs := make([]*memalloc.Buffer, 0, n)
	for i := 0; i < n; i++ {
		b, err := t.stepAlloc(t.sizeVariant(total / int64(n)))
		if err != nil {
			for _, bb := range bufs {
				t.stepFree(bb)
			}
			return err
		}
		bufs = append(bufs, b)
	}
	for _, b := range bufs {
		t.deferFree(b)
	}
	return nil
}

// loraActBytes sizes the retained adapter activations per block.
func (t *Trainer) loraActBytes(seq int) int64 {
	return int64(t.spec.Batch) * int64(seq) * int64(4*t.spec.LoRARank) * model.DTypeBytes
}

// Teardown frees persistent state. Safe after OOM'd steps.
func (t *Trainer) Teardown() {
	for b := range t.stepLive {
		t.alloc.Free(b)
		delete(t.stepLive, b)
	}
	for _, b := range t.persistent {
		t.alloc.Free(b)
	}
	t.persistent = nil
	t.setupDone = false
}

// PersistentBytes reports the bytes held between steps.
func (t *Trainer) PersistentBytes() int64 {
	var n int64
	for _, b := range t.persistent {
		n += b.Requested
	}
	return n
}

// EstimatedStepCompute returns the compute-only lower bound for one step.
func (t *Trainer) EstimatedStepCompute() time.Duration {
	return t.compute.stepComputeLowerBound(t.spec.SeqLen)
}
