package workload

import (
	"time"
)

// Hardware profile for the throughput model: an A100-class device. The
// absolute numbers only scale the virtual-time axis; the figures' shapes
// come from the ratios.
const (
	// effectiveFLOPS is the sustained matmul throughput (A100 fp16 peak
	// ~312 TFLOPS at ~40% utilization).
	effectiveFLOPS = 125e12
	// nvlinkBW is the effective all-gather/reduce-scatter bandwidth.
	nvlinkBW = 150e9
	// pcieBW is the effective host transfer bandwidth for offloading,
	// after ZeRO-Offload's compute/transfer overlap.
	pcieBW = 24e9
)

// computeModel prices the non-allocator time of a training step.
type computeModel struct {
	spec Spec
}

// layerForward returns the forward compute time for one transformer block.
func (c computeModel) layerForward(seq int) time.Duration {
	flops := 2 * float64(c.spec.Batch) * float64(seq) * float64(c.spec.Model.LayerParams())
	return durationSec(flops / effectiveFLOPS)
}

// layerBackward returns the backward compute time for one block: 2x forward,
// plus a recomputed forward when checkpointing is on, minus the weight-grad
// matmuls when the base model is frozen by LoRA.
func (c computeModel) layerBackward(seq int) time.Duration {
	mult := 2.0
	if c.spec.Strategy.Recompute {
		mult++
	}
	if c.spec.Strategy.LoRA {
		mult -= 0.8 // no weight gradients for frozen base parameters
	}
	return time.Duration(float64(c.layerForward(seq)) * mult)
}

// gatherTime returns the all-gather time for bytes of parameters across the
// world (ring all-gather moves bytes*(W-1)/W per GPU).
func (c computeModel) gatherTime(bytes int64) time.Duration {
	w := float64(c.spec.World)
	if w <= 1 {
		return 0
	}
	return durationSec(float64(bytes) * (w - 1) / w / nvlinkBW)
}

// reduceTime prices a reduce-scatter of gradient bytes, same volume as a
// gather.
func (c computeModel) reduceTime(bytes int64) time.Duration { return c.gatherTime(bytes) }

// offloadTime returns the host-transfer time for moving bytes over PCIe.
func (c computeModel) offloadTime(bytes int64) time.Duration {
	return durationSec(float64(bytes) / pcieBW)
}

// headTime prices the LM head and loss.
func (c computeModel) headTime(seq int) time.Duration {
	m := c.spec.Model
	flops := 2 * float64(c.spec.Batch) * float64(seq) * float64(m.Hidden) * float64(m.Vocab)
	return durationSec(flops / effectiveFLOPS)
}

// optimizerTime prices the parameter update for a shard of params.
func (c computeModel) optimizerTime(params int64) time.Duration {
	// ~10 flops per parameter for Adam, memory-bound; price at 1/10 of
	// effective matmul throughput.
	return durationSec(float64(params) * 10 / (effectiveFLOPS / 10))
}

func durationSec(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// stepComputeLowerBound estimates the pure-compute step time, used by tests
// to confirm allocator overhead stays a small fraction.
func (c computeModel) stepComputeLowerBound(seq int) time.Duration {
	perLayer := c.layerForward(seq) + c.layerBackward(seq)
	return time.Duration(int64(perLayer)*int64(c.spec.Model.Layers)) + c.headTime(seq)
}
