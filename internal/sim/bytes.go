package sim

import "fmt"

// Byte size constants. The 2 MiB granularity of CUDA VMM physical chunks is
// the most important size in the system; see ChunkSize in package cuda.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// FormatBytes renders n as a human-readable byte count ("2.0 MB", "80 GB").
// It follows the paper's convention of binary units with SI-style suffixes.
func FormatBytes(n int64) string {
	switch {
	case n >= GiB:
		return trimZero(float64(n)/float64(GiB), "GB")
	case n >= MiB:
		return trimZero(float64(n)/float64(MiB), "MB")
	case n >= KiB:
		return trimZero(float64(n)/float64(KiB), "KB")
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func trimZero(v float64, unit string) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d%s", int64(v), unit)
	}
	return fmt.Sprintf("%.1f%s", v, unit)
}

// RoundUp rounds n up to the next multiple of granularity. It panics when
// granularity is not positive.
func RoundUp(n, granularity int64) int64 {
	if granularity <= 0 {
		panic(fmt.Sprintf("sim: RoundUp granularity %d", granularity))
	}
	rem := n % granularity
	if rem == 0 {
		return n
	}
	return n + granularity - rem
}

// RoundDown rounds n down to the previous multiple of granularity.
func RoundDown(n, granularity int64) int64 {
	if granularity <= 0 {
		panic(fmt.Sprintf("sim: RoundDown granularity %d", granularity))
	}
	return n - n%granularity
}
