package sim

import (
	"math"
	"time"
)

// CostModel prices every simulated CUDA driver call in virtual time.
//
// The model is calibrated to the GMLake paper's own measurements:
//
//   - Table 1 gives the latency breakdown of allocating 2 GB through the VMM
//     API (cuMemAddressReserve / cuMemCreate / cuMemMap / cuMemSetAccess) for
//     physical chunk sizes of 2 MB, 128 MB and 1024 MB, normalized to a
//     cudaMalloc of the same total size.
//   - Figure 6 shows the resulting allocation-latency curve, with the 2 MB
//     chunking 115x slower than the native allocator.
//
// We pin cudaMalloc(2 GB) at 1.0 ms (the paper's Figure 6 places the native
// allocator around 1 ms on a log axis) and derive per-chunk costs for the
// three VMM anchor chunk sizes directly from Table 1. Chunk sizes between
// anchors are interpolated log-log, which reproduces the smooth Figure 6
// sweep across 2 MB .. 1 GB chunkings.
type CostModel struct {
	// MallocBase and MallocPerGiB price cudaMalloc(size) =
	// MallocBase + size * MallocPerGiB. The defaults pin
	// cudaMalloc(2 GiB) = 1.0 ms.
	MallocBase   time.Duration
	MallocPerGiB time.Duration

	// FreeBase and FreePerGiB price cudaFree's driver work, and FreeSync
	// the implicit device synchronization: cudaFree must wait for every
	// in-flight kernel that may touch the freed memory, so under training
	// traffic each call stalls the compute pipeline for milliseconds. This
	// stall is what makes the native allocator ~10x slower end to end
	// (paper §2.2), not the driver bookkeeping itself.
	FreeBase   time.Duration
	FreePerGiB time.Duration
	FreeSync   time.Duration

	// Reserve prices one cuMemAddressReserve call. Table 1 reports it as
	// effectively constant (~0.003x of cuMalloc) regardless of size.
	Reserve time.Duration

	// Host prices one host-side bookkeeping operation (pool search, split,
	// list surgery) inside a caching allocator. PyTorch's caching allocator
	// serves cache hits in about a microsecond, ~10x faster end-to-end than
	// the native path per the paper's 9.7x observation.
	Host time.Duration

	// anchors holds per-chunk costs for create/map/setAccess at the three
	// calibrated chunk sizes.
	anchors []costAnchor
}

type costAnchor struct {
	log2MiB   float64 // log2 of chunk size in MiB: 1, 7, 10
	create    float64 // ms per chunk
	mapCost   float64 // ms per chunk
	setAccess float64 // ms per chunk
}

// DefaultCostModel returns the model calibrated to the paper (see type docs).
func DefaultCostModel() *CostModel {
	// Table 1, normalized units where cuMalloc(2 GiB) == 1.0 (== 1.0 ms
	// in our pinning). Chunk counts for a 2 GiB allocation: 1024 chunks of
	// 2 MiB, 16 of 128 MiB, 2 of 1024 MiB.
	return &CostModel{
		MallocBase:   300 * time.Microsecond,
		MallocPerGiB: 350 * time.Microsecond,
		FreeBase:     350 * time.Microsecond,
		FreePerGiB:   50 * time.Microsecond,
		FreeSync:     5 * time.Millisecond,
		Reserve:      3 * time.Microsecond,
		Host:         time.Microsecond,
		anchors: []costAnchor{
			{log2MiB: 1, create: 18.1 / 1024, mapCost: 0.70 / 1024, setAccess: 96.8 / 1024},
			{log2MiB: 7, create: 0.89 / 16, mapCost: 0.01 / 16, setAccess: 8.2 / 16},
			{log2MiB: 10, create: 0.79 / 2, mapCost: 0.002 / 2, setAccess: 0.7 / 2},
		},
	}
}

// CudaMalloc returns the cost of one native cudaMalloc of size bytes.
func (m *CostModel) CudaMalloc(size int64) time.Duration {
	return m.MallocBase + scalePerGiB(m.MallocPerGiB, size)
}

// CudaFree returns the cost of one native cudaFree of size bytes, including
// the implicit device synchronization (see FreeSync).
func (m *CostModel) CudaFree(size int64) time.Duration {
	return m.FreeBase + m.FreeSync + scalePerGiB(m.FreePerGiB, size)
}

// MemAddressReserve returns the cost of one cuMemAddressReserve call.
// Per Table 1 the cost is size-independent.
func (m *CostModel) MemAddressReserve(size int64) time.Duration { return m.Reserve }

// MemAddressFree returns the cost of one cuMemAddressFree call.
func (m *CostModel) MemAddressFree(size int64) time.Duration { return m.Reserve }

// MemCreate returns the cost of one cuMemCreate of one physical chunk of
// chunkSize bytes.
func (m *CostModel) MemCreate(chunkSize int64) time.Duration {
	return m.perChunk(chunkSize, func(a costAnchor) float64 { return a.create })
}

// MemMap returns the cost of one cuMemMap of one chunk of chunkSize bytes.
func (m *CostModel) MemMap(chunkSize int64) time.Duration {
	return m.perChunk(chunkSize, func(a costAnchor) float64 { return a.mapCost })
}

// MemSetAccess returns the cost of one cuMemSetAccess covering one chunk of
// chunkSize bytes.
func (m *CostModel) MemSetAccess(chunkSize int64) time.Duration {
	return m.perChunk(chunkSize, func(a costAnchor) float64 { return a.setAccess })
}

// MemUnmap returns the cost of one cuMemUnmap of one chunk. Unmapping prices
// like mapping.
func (m *CostModel) MemUnmap(chunkSize int64) time.Duration {
	return m.MemMap(chunkSize)
}

// MemRelease returns the cost of one cuMemRelease of one chunk. Releasing
// physical memory is cheaper than creating it; we price it at 20% of create.
func (m *CostModel) MemRelease(chunkSize int64) time.Duration {
	return m.MemCreate(chunkSize) / 5
}

// HostOp returns the cost of one host-side allocator bookkeeping operation.
func (m *CostModel) HostOp() time.Duration { return m.Host }

// perChunk interpolates a per-chunk cost (in calibrated milliseconds) across
// the anchor table, log-log in chunk size, and converts to a duration.
func (m *CostModel) perChunk(chunkSize int64, field func(costAnchor) float64) time.Duration {
	if chunkSize <= 0 {
		return 0
	}
	x := math.Log2(float64(chunkSize) / float64(MiB))
	a := m.anchors
	var ms float64
	switch {
	case x <= a[0].log2MiB:
		ms = field(a[0])
	case x >= a[len(a)-1].log2MiB:
		ms = field(a[len(a)-1])
	default:
		for i := 0; i+1 < len(a); i++ {
			lo, hi := a[i], a[i+1]
			if x > hi.log2MiB {
				continue
			}
			t := (x - lo.log2MiB) / (hi.log2MiB - lo.log2MiB)
			// Interpolate in log(cost) so the Figure 6 curve is smooth
			// on its log axis.
			ms = math.Exp(math.Log(field(lo))*(1-t) + math.Log(field(hi))*t)
			break
		}
	}
	return time.Duration(ms * float64(time.Millisecond))
}

func scalePerGiB(perGiB time.Duration, size int64) time.Duration {
	return time.Duration(float64(perGiB) * float64(size) / float64(GiB))
}
