package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(250 * time.Microsecond)
	if got, want := c.Now(), 5250*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset, Now() = %v, want 0", c.Now())
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestStopwatch(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	sw := StartStopwatch(c)
	c.Advance(3 * time.Millisecond)
	if got, want := sw.Elapsed(), 3*time.Millisecond; got != want {
		t.Fatalf("Elapsed() = %v, want %v", got, want)
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KiB, "1KB"},
		{1536, "1.5KB"},
		{2 * MiB, "2MB"},
		{80 * GiB, "80GB"},
		{int64(2.5 * float64(GiB)), "2.5GB"},
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.n); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestRoundUpDown(t *testing.T) {
	tests := []struct {
		n, g, up, down int64
	}{
		{0, 512, 0, 0},
		{1, 512, 512, 0},
		{512, 512, 512, 512},
		{513, 512, 1024, 512},
		{3 * MiB, 2 * MiB, 4 * MiB, 2 * MiB},
	}
	for _, tt := range tests {
		if got := RoundUp(tt.n, tt.g); got != tt.up {
			t.Errorf("RoundUp(%d, %d) = %d, want %d", tt.n, tt.g, got, tt.up)
		}
		if got := RoundDown(tt.n, tt.g); got != tt.down {
			t.Errorf("RoundDown(%d, %d) = %d, want %d", tt.n, tt.g, got, tt.down)
		}
	}
}

func TestRoundUpProperty(t *testing.T) {
	f := func(n int32, gExp uint8) bool {
		v := int64(n)
		if v < 0 {
			v = -v
		}
		g := int64(1) << (gExp % 22)
		r := RoundUp(v, g)
		return r >= v && r%g == 0 && r-v < g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Int63n(17); v < 0 || v >= 17 {
			t.Fatalf("Int63n(17) = %d out of range", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of range", f)
		}
	}
}

func TestRNGJitter(t *testing.T) {
	r := NewRNG(1)
	const base = 1000000
	for i := 0; i < 1000; i++ {
		v := r.Jitter(base, 0.25)
		if v < 750000 || v > 1250000 {
			t.Fatalf("Jitter(%d, 0.25) = %d out of [750000,1250000]", base, v)
		}
	}
	if got := r.Jitter(base, 0); got != base {
		t.Fatalf("Jitter with zero spread = %d, want %d", got, base)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm(20) produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestCostModelTable1Anchors(t *testing.T) {
	// Reconstruct Table 1: total VMM allocation cost for 2 GiB, normalized
	// to cuMalloc(2 GiB), at the three anchor chunk sizes.
	m := DefaultCostModel()
	base := m.CudaMalloc(2 * GiB)
	if base != time.Millisecond {
		t.Fatalf("cuMalloc(2GiB) = %v, want 1ms calibration", base)
	}
	tests := []struct {
		chunk  int64
		nTotal float64 // Table 1 "Total" row
		tol    float64
	}{
		{2 * MiB, 115.4, 2.0},
		{128 * MiB, 9.1, 0.5},
		{1024 * MiB, 1.5, 0.2},
	}
	for _, tt := range tests {
		n := (2 * GiB) / tt.chunk
		total := m.MemAddressReserve(2 * GiB)
		for i := int64(0); i < n; i++ {
			total += m.MemCreate(tt.chunk) + m.MemMap(tt.chunk) + m.MemSetAccess(tt.chunk)
		}
		norm := float64(total) / float64(base)
		if norm < tt.nTotal-tt.tol || norm > tt.nTotal+tt.tol {
			t.Errorf("chunk %s: normalized total = %.2f, want %.1f±%.1f",
				FormatBytes(tt.chunk), norm, tt.nTotal, tt.tol)
		}
	}
}

func TestCostModelMonotoneChunks(t *testing.T) {
	// Allocating a fixed total with bigger chunks must never be slower for
	// create (the dominant count effect); the full Figure 6 curve must be
	// strictly decreasing in chunk size for the total.
	m := DefaultCostModel()
	const total = 2 * GiB
	prev := time.Duration(1<<62 - 1)
	for chunk := 2 * MiB; chunk <= 1024*MiB; chunk *= 2 {
		n := total / chunk
		cost := m.MemAddressReserve(total)
		for i := int64(0); i < n; i++ {
			cost += m.MemCreate(chunk) + m.MemMap(chunk) + m.MemSetAccess(chunk)
		}
		if cost >= prev {
			t.Fatalf("VMM total cost not decreasing at chunk %s: %v >= %v",
				FormatBytes(chunk), cost, prev)
		}
		prev = cost
	}
}

func TestCostModelInterpolationBounded(t *testing.T) {
	m := DefaultCostModel()
	// Interpolated per-chunk costs must stay within anchor extremes.
	loC, hiC := m.MemCreate(2*MiB), m.MemCreate(1024*MiB)
	for chunk := 4 * MiB; chunk < 1024*MiB; chunk *= 2 {
		c := m.MemCreate(chunk)
		if c < loC || c > hiC {
			t.Errorf("MemCreate(%s) = %v outside anchor range [%v, %v]",
				FormatBytes(chunk), c, loC, hiC)
		}
	}
	// Clamping outside the anchors.
	if m.MemCreate(1*MiB) != m.MemCreate(2*MiB) {
		t.Error("per-chunk cost below first anchor should clamp")
	}
	if m.MemCreate(4096*MiB) != m.MemCreate(1024*MiB) {
		t.Error("per-chunk cost above last anchor should clamp")
	}
}

func TestCostModelReleaseCheaperThanCreate(t *testing.T) {
	m := DefaultCostModel()
	for chunk := 2 * MiB; chunk <= 1024*MiB; chunk *= 2 {
		if m.MemRelease(chunk) >= m.MemCreate(chunk) {
			t.Fatalf("release not cheaper than create at chunk %s", FormatBytes(chunk))
		}
	}
}

func TestAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(5 * time.Millisecond)
	c.AdvanceTo(3 * time.Millisecond) // past: no-op
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("clock moved backwards: %v", c.Now())
	}
	c.AdvanceTo(9 * time.Millisecond)
	if c.Now() != 9*time.Millisecond {
		t.Fatalf("AdvanceTo future failed: %v", c.Now())
	}
}

func TestCostModelFreeAndUnmapPaths(t *testing.T) {
	m := DefaultCostModel()
	if free := m.CudaFree(2 * GiB); free <= m.FreeSync {
		t.Fatalf("CudaFree %v should exceed the sync stall %v", free, m.FreeSync)
	}
	if m.MemAddressFree(GiB) != m.MemAddressReserve(GiB) {
		t.Fatal("address free should price like reserve")
	}
	if m.MemUnmap(2*MiB) != m.MemMap(2*MiB) {
		t.Fatal("unmap should price like map")
	}
	if m.HostOp() != m.Host {
		t.Fatal("HostOp mispriced")
	}
}

func TestRoundUpDownEdges(t *testing.T) {
	if RoundUp(0, 512) != 0 || RoundDown(0, 512) != 0 {
		t.Fatal("zero rounding")
	}
	if RoundUp(513, 512) != 1024 {
		t.Fatalf("RoundUp(513,512) = %d", RoundUp(513, 512))
	}
	if RoundDown(1023, 512) != 512 {
		t.Fatalf("RoundDown(1023,512) = %d", RoundDown(1023, 512))
	}
	if RoundUp(512, 512) != 512 || RoundDown(512, 512) != 512 {
		t.Fatal("exact multiples must be fixed points")
	}
}

func TestRNGShuffleAndInt63n(t *testing.T) {
	r := NewRNG(9)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	seen := make([]bool, len(vals))
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		if v < 0 || v >= len(seen) || seen[v] {
			t.Fatalf("shuffle corrupted: %v", vals)
		}
		seen[v] = true
	}
	for i := 0; i < 100; i++ {
		if v := r.Int63n(7); v < 0 || v >= 7 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
	if got := r.Jitter(1000, 0); got != 1000 {
		t.Fatalf("zero jitter changed value: %d", got)
	}
}
