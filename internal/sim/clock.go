// Package sim provides the deterministic simulation substrate used by the
// whole repository: a virtual clock, a latency cost model calibrated to the
// GMLake paper's driver-API measurements (Table 1 and Figure 6), and a
// seedable random number generator.
//
// Nothing in this package reads wall-clock time; every experiment is fully
// deterministic and reproducible. The determinism-contract linter
// (internal/lint) enforces the other side of that bargain across the
// repository: simulation code must take its time from Clock (no time.Now,
// wallclock analyzer) and its randomness from RNG or an explicit seed
// (globalrand analyzer).
package sim

import (
	"fmt"
	"time"
)

// Clock is a virtual clock. Components charge simulated latency to the clock
// with Advance; experiment harnesses read it with Now to compute allocation
// latencies, iteration times and throughput.
//
// The zero value is a clock at time zero, ready to use.
type Clock struct {
	now time.Duration
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time since the clock's epoch.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. It panics if d is negative: simulated
// time never runs backwards, and a negative charge always indicates a cost
// model bug.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock forward to t if t is in the future; a no-op
// otherwise. Multi-rank simulations use it as a barrier: every rank's clock
// jumps to the slowest rank's time.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to time zero.
func (c *Clock) Reset() { c.now = 0 }

// Stopwatch measures elapsed virtual time on a Clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartStopwatch begins measuring elapsed virtual time on c.
func StartStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports the virtual time elapsed since the stopwatch was started.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }
