package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64). Workload generators use it so that every experiment replays
// the exact same allocation stream for a given seed.
//
// math/rand would also work, but a self-contained generator pins the stream
// across Go releases, which matters for recorded expectations in tests.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n returns a uniformly distributed int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Jitter returns v scaled by a uniform factor in [1-spread, 1+spread].
// A spread of 0 returns v unchanged.
func (r *RNG) Jitter(v int64, spread float64) int64 {
	if spread <= 0 {
		return v
	}
	f := 1 + spread*(2*r.Float64()-1)
	out := int64(math.Round(float64(v) * f))
	if out < 1 {
		out = 1
	}
	return out
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the n elements addressed by swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
