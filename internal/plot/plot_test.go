package plot

import (
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := Chart{
		Title:  "test chart",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "b", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
		},
	}
	var sb strings.Builder
	c.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "test chart") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "+=b") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("markers missing")
	}
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	var sb strings.Builder
	c.Render(&sb)
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartLogY(t *testing.T) {
	c := Chart{
		Title: "log",
		LogY:  true,
		Series: []Series{
			{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 10, 100}},
		},
	}
	var sb strings.Builder
	c.Render(&sb)
	if !strings.Contains(sb.String(), "100") {
		t.Fatal("log chart should label the top decade")
	}
}

func TestChartSinglePoint(t *testing.T) {
	c := Chart{Title: "one", Series: []Series{{Name: "a", X: []float64{5}, Y: []float64{5}}}}
	var sb strings.Builder
	c.Render(&sb) // must not panic or divide by zero
	if sb.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestChartConstantY(t *testing.T) {
	c := Chart{Title: "flat", Series: []Series{{Name: "a", X: []float64{0, 1}, Y: []float64{7, 7}}}}
	var sb strings.Builder
	c.Render(&sb)
	if !strings.Contains(sb.String(), "*") {
		t.Fatal("flat series not drawn")
	}
}
