// Package plot renders small ASCII charts for the figures whose shape is
// easier to see as a curve than a table: memory-trace timelines (Figures 5
// and 14) and the Figure 6 latency sweep.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of (x, y) points. X values must be ascending.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a multi-series ASCII line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 18)
	Series []Series
	LogY   bool
}

// markers label the series, in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Render draws the chart to w.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 18
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) || xmax == xmin {
		fmt.Fprintf(w, "%s\n (no data)\n", c.Title)
		return
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}

	fmt.Fprintf(w, "%s\n", c.Title)
	yTop, yBot := ymax, ymin
	if c.LogY {
		yTop, yBot = math.Pow(10, ymax), math.Pow(10, ymin)
	}
	for i, row := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%9.3g ", yTop)
		case height - 1:
			label = fmt.Sprintf("%9.3g ", yBot)
		case height / 2:
			mid := (ymax + ymin) / 2
			if c.LogY {
				mid = math.Pow(10, mid)
			}
			label = fmt.Sprintf("%9.3g ", mid)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s%-*.4g%*.4g\n", strings.Repeat(" ", 11), width/2, xmin, width/2, xmax)
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "   x: %s   y: %s   [%s]\n\n", c.XLabel, c.YLabel, strings.Join(legend, ", "))
}
