package expandable

import (
	"errors"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

func newTestAllocator(capacity int64) (*Allocator, *cuda.Driver) {
	dev := gpu.NewDevice("test", capacity)
	drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
	return New(drv), drv
}

func mustAlloc(t *testing.T, a *Allocator, size int64) *memalloc.Buffer {
	t.Helper()
	b, err := a.Alloc(size)
	if err != nil {
		t.Fatalf("Alloc(%d): %v", size, err)
	}
	return b
}

func checkInv(t *testing.T, a *Allocator) {
	t.Helper()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowAndReuse(t *testing.T) {
	a, drv := newTestAllocator(sim.GiB)
	b1 := mustAlloc(t, a, 100*sim.MiB)
	if a.Frontier() != 100*sim.MiB {
		t.Fatalf("frontier = %d, want exactly the mapped request", a.Frontier())
	}
	creates := drv.Counters().MemCreate
	a.Free(b1)
	// Same-size realloc must reuse the mapped prefix: no new chunks.
	b2 := mustAlloc(t, a, 100*sim.MiB)
	if drv.Counters().MemCreate != creates {
		t.Fatal("re-allocation grew the segment")
	}
	if b2.Ptr != b1.Ptr {
		t.Fatal("block not reused at the same address")
	}
	a.Free(b2)
	checkInv(t, a)
}

func TestCrossClassReuse(t *testing.T) {
	// The motivating advantage over the caching allocator: memory freed by
	// one size class serves another without reserving more.
	a, _ := newTestAllocator(2 * sim.GiB)
	var bufs []*memalloc.Buffer
	for i := 0; i < 8; i++ {
		bufs = append(bufs, mustAlloc(t, a, 64*sim.MiB))
	}
	for _, b := range bufs {
		a.Free(b)
	}
	reserved := a.Stats().Reserved
	big := mustAlloc(t, a, 512*sim.MiB) // spans all eight coalesced blocks
	if got := a.Stats().Reserved; got != reserved {
		t.Fatalf("reserved grew from %d to %d; arena should be reused", reserved, got)
	}
	a.Free(big)
	checkInv(t, a)
}

func TestTailMergeOnGrow(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b1 := mustAlloc(t, a, 64*sim.MiB)
	b2 := mustAlloc(t, a, 10*sim.MiB)
	a.Free(b2) // free tail block
	// A request larger than the free tail extends the frontier and must
	// merge with it: only the shortfall is newly mapped.
	before := a.Stats().Reserved
	b3 := mustAlloc(t, a, 30*sim.MiB)
	grown := a.Stats().Reserved - before
	if grown != 20*sim.MiB {
		t.Fatalf("grew %d, want 20 MiB (30 wanted - 10 free tail)", grown)
	}
	a.Free(b1)
	a.Free(b3)
	checkInv(t, a)
}

func TestInteriorHolePinsFrontier(t *testing.T) {
	// The known weakness vs GMLake: a live block above a hole prevents any
	// trim, and a request larger than the hole must extend the frontier.
	a, _ := newTestAllocator(4 * sim.GiB)
	hole := mustAlloc(t, a, 256*sim.MiB)
	pin := mustAlloc(t, a, 64*sim.MiB)
	a.Free(hole)
	before := a.Stats().Reserved
	big := mustAlloc(t, a, 512*sim.MiB)
	if a.Stats().Reserved <= before {
		t.Fatal("expected frontier growth: the hole cannot serve a larger request")
	}
	a.Free(pin)
	a.Free(big)
	checkInv(t, a)
}

func TestEmptyCacheTrimsTail(t *testing.T) {
	a, drv := newTestAllocator(sim.GiB)
	b := mustAlloc(t, a, 128*sim.MiB)
	a.Free(b)
	a.EmptyCache()
	if a.Stats().Reserved != 0 {
		t.Fatalf("Reserved = %d after trim", a.Stats().Reserved)
	}
	if free, total := drv.MemGetInfo(); free != total {
		t.Fatalf("device not free after trim: %d/%d", free, total)
	}
	if a.Frontier() != 0 {
		t.Fatalf("frontier = %d after trim", a.Frontier())
	}
	checkInv(t, a)
	// The allocator must still work after a full trim.
	b2 := mustAlloc(t, a, 64*sim.MiB)
	a.Free(b2)
	checkInv(t, a)
}

func TestEmptyCachePreservesLiveBlocks(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	live := mustAlloc(t, a, 64*sim.MiB)
	dead := mustAlloc(t, a, 64*sim.MiB)
	a.Free(dead)
	a.EmptyCache()
	if got := a.Stats().Reserved; got != 64*sim.MiB {
		t.Fatalf("Reserved = %d, want the live 64 MiB", got)
	}
	a.Free(live)
	checkInv(t, a)
}

func TestSmallRequestsUseSmallPool(t *testing.T) {
	a, drv := newTestAllocator(sim.GiB)
	b := mustAlloc(t, a, 100*sim.KiB)
	if drv.Counters().AddressReserve != 0 {
		t.Fatal("small request touched the expandable segment")
	}
	a.Free(b)
	if st := a.Stats(); st.Active != 0 {
		t.Fatalf("Active = %d", st.Active)
	}
}

func TestOOM(t *testing.T) {
	a, _ := newTestAllocator(256 * sim.MiB)
	b := mustAlloc(t, a, 200*sim.MiB)
	if _, err := a.Alloc(100 * sim.MiB); !errors.Is(err, cuda.ErrOutOfMemory) {
		t.Fatalf("err = %v, want OOM", err)
	}
	a.Free(b)
	checkInv(t, a)
}

func TestDoubleFreePanics(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b := mustAlloc(t, a, 10*sim.MiB)
	a.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double Free did not panic")
		}
	}()
	a.Free(b)
}

func TestRandomWorkloadInvariants(t *testing.T) {
	a, drv := newTestAllocator(8 * sim.GiB)
	rng := sim.NewRNG(31)
	var live []*memalloc.Buffer
	for step := 0; step < 3000; step++ {
		if rng.Float64() < 0.55 {
			size := int64(rng.Intn(int(256*sim.MiB)) + 1)
			if b, err := a.Alloc(size); err == nil {
				live = append(live, b)
			}
		} else if len(live) > 0 {
			i := rng.Intn(len(live))
			a.Free(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if step%500 == 0 {
			checkInv(t, a)
		}
	}
	for _, b := range live {
		a.Free(b)
	}
	checkInv(t, a)
	if st := a.Stats(); st.Active != 0 {
		t.Fatalf("leaked %d bytes", st.Active)
	}
	a.EmptyCache()
	if free, total := drv.MemGetInfo(); free != total {
		t.Fatalf("device leak: %d of %d", free, total)
	}
}

func TestNameAndResetPeaks(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	if a.Name() != "expandable" {
		t.Fatalf("Name = %q", a.Name())
	}
	b, err := a.Alloc(8 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(b)
	a.ResetPeaks()
	st := a.Stats()
	if st.PeakActive != st.Active || st.PeakReserved != st.Reserved {
		t.Fatal("ResetPeaks did not restart peaks")
	}
}
