// Package expandable implements PyTorch's "expandable segments" allocator,
// the VMM-based alternative to GMLake that PyTorch later shipped
// (PYTORCH_CUDA_ALLOC_CONF=expandable_segments:True). The paper's §6
// positions GMLake against this family of techniques; including it makes the
// evaluation a three-way comparison between the splitting baseline, stitching
// (GMLake) and growing (expandable segments).
//
// Design, mirroring the PyTorch implementation:
//
//   - One huge virtual address reservation (the expandable segment) per
//     device, sized at device capacity. Nothing is mapped up front.
//   - Physical memory is committed in 2 MiB chunks by extending a frontier:
//     when no cached free block fits, the segment grows at its tail with
//     cuMemCreate + cuMemMap + cuMemSetAccess, and the new space merges with
//     a trailing free block.
//   - Inside the mapped prefix, blocks are managed exactly like the caching
//     allocator: best fit, split, and coalesce on free.
//
// Because every size class draws from one contiguous arena, the cross-class
// segment fragmentation that dooms the caching allocator disappears; unlike
// GMLake, interior holes can still pin the frontier (no stitching), so its
// reserved memory sits between the two.
//
// Requests below the small threshold use a conventional caching small pool,
// as in PyTorch.
package expandable

import (
	"fmt"

	"repro/internal/caching"
	"repro/internal/container"
	"repro/internal/cuda"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

// ChunkSize is the physical mapping granularity (2 MiB, as for GMLake).
const ChunkSize = cuda.ChunkGranularity

// SmallThreshold routes sub-2 MiB requests to the embedded small pool.
const SmallThreshold = 2 * sim.MiB

// Allocator is the expandable-segments allocator.
type Allocator struct {
	driver *cuda.Driver
	acct   memalloc.Accounting

	va       cuda.DevicePtr // segment base (reserved once, lazily)
	vaSize   int64          // reservation size (device capacity)
	frontier int64          // mapped prefix length
	chunks   []cuda.MemHandle

	blocks *block // address-ordered chain over [0, frontier)
	free   *container.Tree[*block]

	small *caching.Allocator
}

type block struct {
	off       int64
	size      int64
	allocated bool
	prev      *block
	next      *block
	node      *container.Node[*block]
}

// New returns an expandable-segments allocator over driver.
func New(driver *cuda.Driver) *Allocator {
	return &Allocator{
		driver: driver,
		free: container.NewTree[*block](func(a, b *block) bool {
			if a.size != b.size {
				return a.size < b.size
			}
			return a.off < b.off
		}),
		small: caching.New(driver),
	}
}

// Name implements memalloc.Allocator.
func (a *Allocator) Name() string { return "expandable" }

// Stats implements memalloc.Allocator.
func (a *Allocator) Stats() memalloc.Stats {
	st := a.acct.Stats()
	ss := a.small.Stats()
	st.Active += ss.Active
	st.Reserved += ss.Reserved
	st.PeakActive += ss.PeakActive
	st.PeakReserved += ss.PeakReserved
	st.AllocCount += ss.AllocCount
	st.FreeCount += ss.FreeCount
	return st
}

// ResetPeaks restarts peak tracking.
func (a *Allocator) ResetPeaks() {
	a.acct.ResetPeaks()
	a.small.ResetPeaks()
}

// ensureSegment lazily reserves the segment VA at first use.
func (a *Allocator) ensureSegment() error {
	if a.vaSize != 0 {
		return nil
	}
	_, total := a.driver.MemGetInfo()
	size := sim.RoundUp(total, ChunkSize)
	va, err := a.driver.MemAddressReserve(size)
	if err != nil {
		return err
	}
	a.va = va
	a.vaSize = size
	return nil
}

// Alloc implements memalloc.Allocator.
func (a *Allocator) Alloc(size int64) (*memalloc.Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("expandable: Alloc(%d)", size)
	}
	if size < SmallThreshold {
		return a.small.Alloc(size)
	}
	a.driver.Clock().Advance(a.driver.Cost().HostOp())
	if err := a.ensureSegment(); err != nil {
		return nil, err
	}
	rounded := caching.RoundSize(size)

	blk := a.findBestFit(rounded)
	if blk == nil {
		var err error
		blk, err = a.extend(rounded)
		if err != nil {
			return nil, err
		}
	}
	blk = a.maybeSplit(blk, rounded)
	blk.allocated = true
	a.acct.OnAlloc(blk.size)
	buf := &memalloc.Buffer{
		Ptr:       a.va + cuda.DevicePtr(blk.off),
		Requested: size,
		BlockSize: blk.size,
	}
	buf.SetImpl(blk)
	return buf, nil
}

func (a *Allocator) findBestFit(size int64) *block {
	n := a.free.Ceil(&block{size: size})
	if n == nil {
		return nil
	}
	blk := n.Value
	a.free.Delete(n)
	blk.node = nil
	return blk
}

// extend grows the mapped frontier so a block of size bytes fits at the
// tail, merging with a trailing free block if one exists. Returns the
// ready-to-split free block covering the request.
func (a *Allocator) extend(size int64) (*block, error) {
	tail := a.tail()
	tailFree := int64(0)
	if tail != nil && !tail.allocated {
		tailFree = tail.size
	}
	need := sim.RoundUp(size-tailFree, ChunkSize)
	if a.frontier+need > a.vaSize {
		return nil, fmt.Errorf("expandable: %w: segment frontier at %d of %d",
			cuda.ErrOutOfMemory, a.frontier, a.vaSize)
	}
	// Commit physical chunks; roll back on device OOM.
	var created []cuda.MemHandle
	for off := int64(0); off < need; off += ChunkSize {
		h, err := a.driver.MemCreate(ChunkSize)
		if err != nil {
			for i, hh := range created {
				base := a.va + cuda.DevicePtr(a.frontier+int64(i)*ChunkSize)
				if e := a.driver.MemUnmap(base, ChunkSize); e != nil {
					panic("expandable: rollback unmap: " + e.Error())
				}
				if e := a.driver.MemRelease(hh); e != nil {
					panic("expandable: rollback release: " + e.Error())
				}
			}
			return nil, err
		}
		if err := a.driver.MemMap(a.va+cuda.DevicePtr(a.frontier+off), h); err != nil {
			panic("expandable: MemMap: " + err.Error())
		}
		created = append(created, h)
	}
	if err := a.driver.MemSetAccess(a.va+cuda.DevicePtr(a.frontier), need); err != nil {
		panic("expandable: MemSetAccess: " + err.Error())
	}
	a.chunks = append(a.chunks, created...)
	a.acct.OnReserve(need)

	grown := &block{off: a.frontier, size: need, prev: tail}
	a.frontier += need
	if tail != nil {
		tail.next = grown
	} else {
		a.blocks = grown
	}
	// Merge with a free tail block.
	if tail != nil && !tail.allocated {
		a.free.Delete(tail.node)
		tail.node = nil
		tail.size += grown.size
		tail.next = nil
		if tail.prev != nil {
			tail.prev.next = tail
		} else {
			a.blocks = tail
		}
		return tail, nil
	}
	return grown, nil
}

func (a *Allocator) tail() *block {
	if a.blocks == nil {
		return nil
	}
	b := a.blocks
	for b.next != nil {
		b = b.next
	}
	return b
}

func (a *Allocator) maybeSplit(blk *block, size int64) *block {
	remaining := blk.size - size
	if remaining < caching.MinBlockSize {
		return blk
	}
	rest := &block{
		off:  blk.off + size,
		size: remaining,
		prev: blk,
		next: blk.next,
	}
	if blk.next != nil {
		blk.next.prev = rest
	}
	blk.next = rest
	blk.size = size
	rest.node = a.free.Insert(rest)
	return blk
}

// Free implements memalloc.Allocator: coalescing free, no driver calls.
func (a *Allocator) Free(buf *memalloc.Buffer) {
	blk, ok := buf.Impl().(*block)
	if !ok || blk == nil {
		// Small-pool buffer.
		a.small.Free(buf)
		return
	}
	if !blk.allocated {
		panic("expandable: double Free")
	}
	a.driver.Clock().Advance(a.driver.Cost().HostOp())
	a.acct.OnFree(blk.size)
	blk.allocated = false
	buf.SetImpl(nil)

	if nb := blk.next; nb != nil && !nb.allocated {
		a.free.Delete(nb.node)
		blk.size += nb.size
		blk.next = nb.next
		if nb.next != nil {
			nb.next.prev = blk
		}
	}
	if pb := blk.prev; pb != nil && !pb.allocated {
		a.free.Delete(pb.node)
		pb.size += blk.size
		pb.next = blk.next
		if blk.next != nil {
			blk.next.prev = pb
		}
		blk = pb
	}
	blk.node = a.free.Insert(blk)
}

// EmptyCache implements memalloc.Allocator: unmap the free tail of the
// segment, returning its physical chunks to the device (PyTorch trims
// expandable segments the same way).
func (a *Allocator) EmptyCache() {
	a.small.EmptyCache()
	tail := a.tail()
	if tail == nil || tail.allocated {
		return
	}
	// Unmap whole chunks contained in the free tail.
	releaseFrom := sim.RoundUp(tail.off, ChunkSize)
	releaseBytes := a.frontier - releaseFrom
	if releaseBytes <= 0 {
		return
	}
	if err := a.driver.MemUnmap(a.va+cuda.DevicePtr(releaseFrom), releaseBytes); err != nil {
		panic("expandable: trim unmap: " + err.Error())
	}
	nChunks := releaseBytes / ChunkSize
	for _, h := range a.chunks[int64(len(a.chunks))-nChunks:] {
		if err := a.driver.MemRelease(h); err != nil {
			panic("expandable: trim release: " + err.Error())
		}
	}
	a.chunks = a.chunks[:int64(len(a.chunks))-nChunks]
	a.acct.OnRelease(releaseBytes)
	a.frontier = releaseFrom

	// Shrink or drop the tail block.
	a.free.Delete(tail.node)
	tail.node = nil
	if tail.off == releaseFrom {
		if tail.prev != nil {
			tail.prev.next = nil
		} else {
			a.blocks = nil
		}
		return
	}
	tail.size = releaseFrom - tail.off
	tail.next = nil
	tail.node = a.free.Insert(tail)
}

// Frontier reports the mapped prefix length (diagnostics).
func (a *Allocator) Frontier() int64 { return a.frontier }

// CheckInvariants validates the block chain: it must tile [0, frontier)
// exactly, with free blocks indexed and coalesced.
func (a *Allocator) CheckInvariants() error {
	var off int64
	prevFree := false
	for blk := a.blocks; blk != nil; blk = blk.next {
		if blk.off != off {
			return fmt.Errorf("expandable: gap at offset %d", off)
		}
		if blk.next != nil && blk.next.prev != blk {
			return fmt.Errorf("expandable: broken chain links")
		}
		if !blk.allocated {
			if prevFree {
				return fmt.Errorf("expandable: adjacent free blocks not merged")
			}
			if blk.node == nil {
				return fmt.Errorf("expandable: free block missing from index")
			}
			prevFree = true
		} else {
			prevFree = false
		}
		off += blk.size
	}
	if off != a.frontier {
		return fmt.Errorf("expandable: blocks tile %d of frontier %d", off, a.frontier)
	}
	if got := int64(len(a.chunks)) * ChunkSize; got != a.frontier {
		return fmt.Errorf("expandable: %d chunk bytes vs frontier %d", got, a.frontier)
	}
	return nil
}
