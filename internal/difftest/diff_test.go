// Package difftest runs randomized differential tests across every
// allocator in the library: the same synthetic request stream is replayed
// on all of them, and outcomes that must agree (successful completion on an
// amply sized device, identical request-level accounting, no leaks) are
// checked against each other. Shape properties that distinguish the
// allocators (GMLake reserving no more than the baseline on fragmenting
// streams) are asserted in the direction the paper predicts.
package difftest

import (
	"fmt"
	"testing"

	"repro/internal/caching"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/expandable"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// allAllocators builds one fresh instance of every allocator on its own
// device.
func allAllocators(capacity int64) map[string]memalloc.Allocator {
	mk := func() *cuda.Driver {
		return cuda.NewDriver(gpu.NewDevice("diff", capacity), sim.NewClock(), sim.DefaultCostModel())
	}
	return map[string]memalloc.Allocator{
		"caching":    caching.New(mk()),
		"gmlake":     core.NewDefault(mk()),
		"expandable": expandable.New(mk()),
		"compact":    compact.New(mk()),
	}
}

// genStream builds a random but well-formed alloc/free stream with the
// irregular sizing that provokes fragmentation: sizes are drawn from
// several scales, lifetimes interleave, and everything is freed by the end.
func genStream(seed uint64, ops int, maxLive int64) *trace.Trace {
	rng := sim.NewRNG(seed)
	t := &trace.Trace{}
	type liveAlloc struct {
		id   int64
		size int64
	}
	var live []liveAlloc
	var liveBytes int64
	var nextID int64

	for i := 0; i < ops; i++ {
		allocate := rng.Intn(2) == 0 || len(live) == 0
		if liveBytes > maxLive {
			allocate = false
		}
		if allocate {
			// Three size scales: small (sub-2MB), tensor-ish, huge.
			var size int64
			switch rng.Intn(6) {
			case 0:
				size = int64(rng.Intn(int(2*sim.MiB-1))) + 1
			case 5:
				size = int64(rng.Intn(256)+64) * sim.MiB
			default:
				size = int64(rng.Intn(64)+1) * sim.MiB
			}
			size = rng.Jitter(size, 0.3)
			if size <= 0 {
				size = 1
			}
			nextID++
			t.Events = append(t.Events, trace.Event{Op: trace.OpAlloc, ID: nextID, Size: size})
			live = append(live, liveAlloc{id: nextID, size: size})
			liveBytes += size
		} else {
			k := rng.Intn(len(live))
			t.Events = append(t.Events, trace.Event{Op: trace.OpFree, ID: live[k].id})
			liveBytes -= live[k].size
			live = append(live[:k], live[k+1:]...)
		}
	}
	for _, l := range live {
		t.Events = append(t.Events, trace.Event{Op: trace.OpFree, ID: l.id})
	}
	return t
}

func TestDifferentialRandomStreams(t *testing.T) {
	const capacity = 64 * sim.GiB
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			stream := genStream(seed, 600, 24*sim.GiB)
			if err := stream.Validate(); err != nil {
				t.Fatalf("generator produced invalid stream: %v", err)
			}
			want := stream.Stats()

			results := map[string]memalloc.Stats{}
			for name, alloc := range allAllocators(capacity) {
				if err := trace.Replay(stream, alloc); err != nil {
					t.Fatalf("%s: replay failed on an amply sized device: %v", name, err)
				}
				st := alloc.Stats()
				if st.Active != 0 {
					t.Fatalf("%s: %d bytes active after full free", name, st.Active)
				}
				if st.AllocCount != want.Allocs || st.FreeCount != want.Frees {
					t.Fatalf("%s: served %d/%d, stream has %d/%d",
						name, st.AllocCount, st.FreeCount, want.Allocs, want.Frees)
				}
				if st.PeakActive > st.PeakReserved {
					t.Fatalf("%s: peak active %d above peak reserved %d", name, st.PeakActive, st.PeakReserved)
				}
				results[name] = st
			}

			// Every allocator saw identical requests, so peak active can
			// differ only by rounding policy — never by more than 15%.
			base := results["caching"].PeakActive
			for name, st := range results {
				if diff := st.PeakActive - base; diff > base/7 || diff < -base/7 {
					t.Fatalf("%s peak active %d far from caching %d", name, st.PeakActive, base)
				}
			}

			// The paper's direction: GMLake never reserves meaningfully
			// more than the splitting baseline on irregular streams.
			if g, c := results["gmlake"].PeakReserved, results["caching"].PeakReserved; g > c+c/20 {
				t.Fatalf("gmlake reserved %d exceeds caching %d by >5%%", g, c)
			}

			// Structural invariant checks on every allocator that exposes
			// them (all four do): no overlapping blocks, tiling intact,
			// free-index state consistent after the full stream.
			fresh := allAllocators(capacity)
			for name, alloc := range fresh {
				chk, ok := alloc.(interface{ CheckInvariants() error })
				if !ok {
					t.Fatalf("%s does not expose CheckInvariants", name)
				}
				if err := trace.Replay(stream, alloc); err != nil {
					t.Fatalf("%s: replay for invariant check: %v", name, err)
				}
				if err := chk.CheckInvariants(); err != nil {
					t.Fatalf("%s invariants: %v", name, err)
				}
			}
		})
	}
}

// TestDifferentialTightDevice replays fragmenting streams on a tight device:
// allocators may legitimately OOM, but they must do so cleanly — accounting
// intact, no partial state, and EmptyCache still functional.
func TestDifferentialTightDevice(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		stream := genStream(seed, 400, 6*sim.GiB)
		for name, alloc := range allAllocators(4 * sim.GiB) {
			err := trace.Replay(stream, alloc)
			st := alloc.Stats()
			if err != nil {
				// OOM is fine; corruption is not.
				if st.Active < 0 || st.Reserved < 0 {
					t.Fatalf("%s seed %d: negative accounting after OOM", name, seed)
				}
				alloc.EmptyCache()
				continue
			}
			if st.Active != 0 {
				t.Fatalf("%s seed %d: leak without OOM", name, seed)
			}
		}
	}
}
