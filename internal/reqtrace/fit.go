package reqtrace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/servegen"
)

// Fitting thresholds. Interarrival CV within PoissonCVBand of 1 fits the
// memoryless process; a class whose arrivals occupy at most OnOffDutyMax of
// the trace horizon in at least two separated bursts fits an on-off cycle.
const (
	poissonCVBand = 0.25
	onOffDutyMax  = 0.55
	onOffBins     = 48
)

// Fit recovers a servegen.Mix from a trace: per-class rate shares from
// request counts, arrival processes from interarrival statistics (Poisson
// within poissonCVBand of CV 1, Gamma with the observed CV otherwise, on-off
// with the observed duty cycle when arrivals bunch into separated bursts)
// and token-length distributions from sample moments (deterministic when
// degenerate, lognormal with the observed mean/CV clamped to the observed
// range otherwise). The fitted mix is a parametric model, not a copy: the
// quality of the fit is measured by FitError, never assumed.
func Fit(t Trace) (servegen.Mix, error) {
	if err := t.Validate(); err != nil {
		return servegen.Mix{}, err
	}
	span := t.Span().Seconds()
	if span <= 0 {
		return servegen.Mix{}, fmt.Errorf("reqtrace: trace span is zero — cannot estimate rates")
	}
	byClass := splitClasses(t)
	names := make([]string, 0, len(byClass))
	for name := range byClass {
		names = append(names, name)
	}
	sort.Strings(names)

	m := servegen.Mix{
		Name: "fitted",
		Rate: float64(len(t.Records)) / span,
	}
	for _, name := range names {
		c := byClass[name]
		m.Classes = append(m.Classes, servegen.ClientClass{
			Name:    name,
			SLO:     c.slo,
			Share:   float64(len(c.arrivals)) / float64(len(t.Records)),
			Arrival: fitArrival(c.arrivals, span),
			Prompt:  fitLength(c.prompts),
			Output:  fitLength(c.outputs),
		})
	}
	if err := m.Validate(); err != nil {
		return servegen.Mix{}, fmt.Errorf("reqtrace: fitted mix invalid: %w", err)
	}
	return m, nil
}

// classSamples are one class's raw observations.
type classSamples struct {
	slo      string
	arrivals []float64 // seconds
	prompts  []int
	outputs  []int
}

func splitClasses(t Trace) map[string]*classSamples {
	byClass := map[string]*classSamples{}
	for _, r := range t.Records {
		name := r.Class
		if name == "" {
			name = "default"
		}
		c := byClass[name]
		if c == nil {
			c = &classSamples{slo: r.SLO}
			byClass[name] = c
		}
		c.arrivals = append(c.arrivals, r.Arrival.Seconds())
		c.prompts = append(c.prompts, r.Prompt)
		c.outputs = append(c.outputs, r.Output)
	}
	return byClass
}

// fitArrival picks the arrival family for one class's arrival offsets over
// the trace horizon.
func fitArrival(times []float64, span float64) servegen.ArrivalProcess {
	if len(times) < 3 {
		return servegen.Poisson() // too few gaps to estimate anything
	}
	gaps := make([]float64, len(times)-1)
	for i := range gaps {
		gaps[i] = times[i+1] - times[i]
	}
	mean, cv := meanCV(gaps)
	if mean <= 0 {
		return servegen.Poisson()
	}

	// On-off: bin the horizon and look for separated bursts. The duty
	// cycle is the occupied-bin fraction, the cycle length the horizon per
	// burst — both recover the generator's parameters when the horizon
	// covers a few cycles.
	//
	// known-limitation: this check runs before the CV-based families, and
	// it keys on bin occupancy, not on the gap distribution's shape. An
	// extreme-CV Gamma process on a short horizon — a handful of dense
	// clumps separated by long silences, exactly what CV ≳ 4 produces
	// over a few hundred requests — occupies ≤ onOffDutyMax of the bins
	// in ≥ 2 bursts and therefore fits as on-off, not Gamma. Longer
	// horizons smear Gamma clumps across more bins and escape the trap.
	// TestFitExtremeCVGammaShortHorizonFitsAsOnOff pins the current
	// behavior; a future fix that separates heavy-tailed gaps from a true
	// duty cycle flips that test's expected arrival family and nothing
	// else.
	bins := onOffBins
	if bins > len(times) {
		bins = len(times)
	}
	occupied := make([]bool, bins)
	for _, at := range times {
		b := int(at / span * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		occupied[b] = true
	}
	on, bursts := 0, 0
	for i, o := range occupied {
		if o {
			on++
			if i == 0 || !occupied[i-1] {
				bursts++
			}
		}
	}
	if duty := float64(on) / float64(bins); duty <= onOffDutyMax && bursts >= 2 {
		cycle := time.Duration(span / float64(bursts) * float64(time.Second))
		return servegen.OnOff(duty, cycle)
	}

	if cv <= 0 || math.Abs(cv-1) <= poissonCVBand {
		return servegen.Poisson()
	}
	return servegen.Bursty(cv)
}

// fitLength fits a token-length distribution from its samples.
func fitLength(samples []int) servegen.LengthDist {
	min, max := samples[0], samples[0]
	fs := make([]float64, len(samples))
	for i, v := range samples {
		fs[i] = float64(v)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == max {
		return servegen.Deterministic(min)
	}
	mean, cv := meanCV(fs)
	return servegen.Lognormal(mean, cv, min, max)
}

// meanCV returns the sample mean and coefficient of variation.
func meanCV(xs []float64) (mean, cv float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(xs)))
	return mean, std / mean
}

// ClassFitError measures how one class of a synthetic stream generated from
// a mix deviates from the same class of a reference trace. Relative errors
// are |synthetic − observed| / observed; KS distances are two-sample
// Kolmogorov–Smirnov statistics in [0, 1].
type ClassFitError struct {
	Class string
	SLO   string

	TraceRequests int // class requests in the reference trace
	SynthRequests int // class requests in the generated stream

	RateErr       float64 // mean arrival rate
	PromptMeanErr float64 // mean prompt tokens
	OutputMeanErr float64 // mean output tokens

	ArrivalKS float64 // interarrival-gap distributions
	PromptKS  float64 // prompt-length distributions
	OutputKS  float64 // output-length distributions
}

// FitReport is the fit-error report of one mix against a reference trace:
// aggregate moment-match errors plus the per-class breakdown, classes
// sorted by name. A class present on only one side reports relative errors
// of 1 with zero requests on the missing side.
type FitReport struct {
	// RateErr, PromptMeanErr and OutputMeanErr are the aggregate
	// moment-match errors over the whole stream.
	RateErr       float64
	PromptMeanErr float64
	OutputMeanErr float64

	Classes []ClassFitError
}

// Class returns the named class's row, or nil.
func (r FitReport) Class(name string) *ClassFitError {
	for i := range r.Classes {
		if r.Classes[i].Class == name {
			return &r.Classes[i]
		}
	}
	return nil
}

// FitError generates n requests from the mix under the given seed and
// measures how the synthetic stream deviates from the reference trace:
// moment matches (rate, mean lengths) and per-class KS distances. It is the
// honesty check behind Fit — run it on the fitted mix to know how much to
// trust the calibration, or on a hand-picked mix to see what calibration
// would buy. A caller that already generated (and, typically, served) the
// mix's stream can compare it directly with CompareTraces instead of
// regenerating.
func FitError(t Trace, m servegen.Mix, n int, seed uint64) (FitReport, error) {
	if err := t.Validate(); err != nil {
		return FitReport{}, err
	}
	reqs, err := m.Generate(n, seed)
	if err != nil {
		return FitReport{}, err
	}
	return CompareTraces(t, FromRequests(reqs)), nil
}

// CompareTraces measures how the synth trace deviates from the reference
// trace t — the comparison half of FitError, for callers that already hold
// the synthetic stream.
func CompareTraces(t, synth Trace) FitReport {
	obsStats, synStats := t.Stats(), synth.Stats()
	rep := FitReport{
		RateErr:       relErr(synStats.RatePerSec, obsStats.RatePerSec),
		PromptMeanErr: relErr(synStats.MeanPrompt, obsStats.MeanPrompt),
		OutputMeanErr: relErr(synStats.MeanOutput, obsStats.MeanOutput),
	}

	obs, syn := splitClasses(t), splitClasses(synth)
	names := map[string]bool{}
	for name := range obs {
		names[name] = true
	}
	for name := range syn {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		o, s := obs[name], syn[name]
		ce := ClassFitError{Class: name}
		switch {
		case o == nil: // invented by the mix
			ce.SLO = s.slo
			ce.SynthRequests = len(s.arrivals)
			ce.RateErr, ce.PromptMeanErr, ce.OutputMeanErr = 1, 1, 1
			ce.ArrivalKS, ce.PromptKS, ce.OutputKS = 1, 1, 1
		case s == nil: // dropped by the mix
			ce.SLO = o.slo
			ce.TraceRequests = len(o.arrivals)
			ce.RateErr, ce.PromptMeanErr, ce.OutputMeanErr = 1, 1, 1
			ce.ArrivalKS, ce.PromptKS, ce.OutputKS = 1, 1, 1
		default:
			ce.SLO = o.slo
			ce.TraceRequests = len(o.arrivals)
			ce.SynthRequests = len(s.arrivals)
			ce.RateErr = relErr(
				rate(s.arrivals, synth.Span().Seconds()),
				rate(o.arrivals, t.Span().Seconds()))
			ce.PromptMeanErr = relErr(meanInt(s.prompts), meanInt(o.prompts))
			ce.OutputMeanErr = relErr(meanInt(s.outputs), meanInt(o.outputs))
			ce.ArrivalKS = ksFloats(gapsOf(o.arrivals), gapsOf(s.arrivals))
			ce.PromptKS = ksInts(o.prompts, s.prompts)
			ce.OutputKS = ksInts(o.outputs, s.outputs)
		}
		rep.Classes = append(rep.Classes, ce)
	}
	return rep
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(got-want) / want
}

func rate(times []float64, span float64) float64 {
	if span <= 0 {
		return 0
	}
	return float64(len(times)) / span
}

func meanInt(xs []int) float64 {
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

func gapsOf(times []float64) []float64 {
	if len(times) < 2 {
		return nil
	}
	gaps := make([]float64, len(times)-1)
	for i := range gaps {
		gaps[i] = times[i+1] - times[i]
	}
	return gaps
}

// ksInts is the two-sample KS distance over integer samples.
func ksInts(a, b []int) float64 {
	fa := make([]float64, len(a))
	for i, v := range a {
		fa[i] = float64(v)
	}
	fb := make([]float64, len(b))
	for i, v := range b {
		fb[i] = float64(v)
	}
	return ksFloats(fa, fb)
}

// ksFloats is the two-sample Kolmogorov–Smirnov statistic: the maximum gap
// between the two empirical CDFs. Inputs are copied before sorting. An
// empty side yields 1 (maximal mismatch) unless both are empty.
func ksFloats(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == len(b) {
			return 0
		}
		return 1
	}
	a = append([]float64(nil), a...)
	b = append([]float64(nil), b...)
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	var d float64
	na, nb := float64(len(a)), float64(len(b))
	for i < len(a) && j < len(b) {
		x := a[i]
		if b[j] < x {
			x = b[j]
		}
		for i < len(a) && a[i] <= x {
			i++
		}
		for j < len(b) && b[j] <= x {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}
