package reqtrace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// The on-disk formats. Both are versioned and both round-trip a trace
// exactly (arrival offsets are integer nanoseconds):
//
// JSONL — a header object followed by one record object per line:
//
//	{"format":"reqtrace","version":1}
//	{"arrival_ns":212334791,"class":"chat","slo":"interactive","priority":2,"prompt_tokens":120,"output_tokens":64}
//
// CSV — a #reqtrace version comment, a column header, then one row per
// record:
//
//	#reqtrace v1
//	arrival_ns,class,slo,priority,prompt_tokens,output_tokens
//	212334791,chat,interactive,2,120,64
//
// Read sniffs the first byte ('{' = JSONL, '#' = CSV) so either format can
// be piped in under any file name; WriteFile picks CSV for a .csv path and
// JSONL otherwise.
//
// Session identity is carried backward-compatibly. JSONL records of a
// session trace add "session_id" and "turn" keys (omitted on one-shot
// records, so a sessionless trace writes byte-identically to the pre-session
// format). A CSV session trace appends session_id and turn columns to the
// header and every row; a sessionless trace writes the original six-column
// format byte for byte. Readers accept both layouts under the same version
// comment, so every v1 file written before the extension still reads, with
// zero session fields.

type jsonHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

type jsonRecord struct {
	ArrivalNS int64  `json:"arrival_ns"`
	Class     string `json:"class,omitempty"`
	SLO       string `json:"slo,omitempty"`
	Priority  int    `json:"priority,omitempty"`
	Prompt    int    `json:"prompt_tokens"`
	Output    int    `json:"output_tokens"`
	SessionID string `json:"session_id,omitempty"`
	Turn      int    `json:"turn,omitempty"`
}

var (
	csvHeader = []string{"arrival_ns", "class", "slo", "priority", "prompt_tokens", "output_tokens"}
	// csvSessionHeader is the extended layout a trace with sessions writes;
	// readers accept either.
	csvSessionHeader = append(append([]string(nil), csvHeader...), "session_id", "turn")
)

// hasSessions reports whether any record carries a session id — the
// write-side switch between the original and the extended CSV layout.
func (t Trace) hasSessions() bool {
	for _, r := range t.Records {
		if r.SessionID != "" {
			return true
		}
	}
	return false
}

// WriteJSONL writes the trace in the JSONL format.
func (t Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonHeader{Format: "reqtrace", Version: Version}); err != nil {
		return fmt.Errorf("reqtrace: write header: %w", err)
	}
	for i, r := range t.Records {
		jr := jsonRecord{
			ArrivalNS: int64(r.Arrival),
			Class:     r.Class,
			SLO:       r.SLO,
			Priority:  r.Priority,
			Prompt:    r.Prompt,
			Output:    r.Output,
			SessionID: r.SessionID,
			Turn:      r.Turn,
		}
		if err := enc.Encode(jr); err != nil {
			return fmt.Errorf("reqtrace: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// WriteCSV writes the trace in the CSV format: the extended session layout
// when any record carries a session id, the original six-column layout —
// byte for byte — otherwise.
func (t Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#reqtrace v%d\n", Version); err != nil {
		return err
	}
	sessions := t.hasSessions()
	header := csvHeader
	if sessions {
		header = csvSessionHeader
	}
	cw := csv.NewWriter(bw)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Records {
		row := []string{
			strconv.FormatInt(int64(r.Arrival), 10),
			r.Class, r.SLO,
			strconv.Itoa(r.Priority),
			strconv.Itoa(r.Prompt),
			strconv.Itoa(r.Output),
		}
		if sessions {
			row = append(row, r.SessionID, strconv.Itoa(r.Turn))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a trace from r, sniffing the format from the first byte, and
// validates it.
func Read(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return Trace{}, fmt.Errorf("reqtrace: empty input: %w", err)
	}
	var t Trace
	switch first[0] {
	case '{':
		t, err = readJSONL(br)
	case '#':
		t, err = readCSV(br)
	default:
		return Trace{}, fmt.Errorf("reqtrace: unrecognized trace format (want a JSONL header object or a #reqtrace CSV comment, got %q)", first[0])
	}
	if err != nil {
		return Trace{}, err
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}

func readJSONL(br *bufio.Reader) (Trace, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return Trace{}, fmt.Errorf("reqtrace: missing JSONL header")
	}
	var h jsonHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Format != "reqtrace" {
		return Trace{}, fmt.Errorf("reqtrace: bad JSONL header %q", sc.Text())
	}
	if h.Version > Version {
		return Trace{}, fmt.Errorf("reqtrace: trace version %d is newer than supported %d", h.Version, Version)
	}
	var t Trace
	line := 1
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal([]byte(s), &jr); err != nil {
			return Trace{}, fmt.Errorf("reqtrace: line %d: %w", line, err)
		}
		t.Records = append(t.Records, Record{
			Arrival:   time.Duration(jr.ArrivalNS),
			Class:     jr.Class,
			SLO:       jr.SLO,
			Priority:  jr.Priority,
			Prompt:    jr.Prompt,
			Output:    jr.Output,
			SessionID: jr.SessionID,
			Turn:      jr.Turn,
		})
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("reqtrace: %w", err)
	}
	return t, nil
}

func readCSV(br *bufio.Reader) (Trace, error) {
	head, err := br.ReadString('\n')
	if err != nil {
		return Trace{}, fmt.Errorf("reqtrace: missing CSV version comment: %w", err)
	}
	var v int
	if _, err := fmt.Sscanf(strings.TrimSpace(head), "#reqtrace v%d", &v); err != nil {
		return Trace{}, fmt.Errorf("reqtrace: bad CSV version comment %q", strings.TrimSpace(head))
	}
	if v > Version {
		return Trace{}, fmt.Errorf("reqtrace: trace version %d is newer than supported %d", v, Version)
	}
	// Rows are length-checked against the header below; the csv package
	// only needs to deliver them (both accepted layouts are rectangular).
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return Trace{}, fmt.Errorf("reqtrace: %w", err)
	}
	if len(rows) == 0 {
		return Trace{}, fmt.Errorf("reqtrace: missing CSV column header %q", strings.Join(csvHeader, ","))
	}
	var sessions bool
	switch strings.Join(rows[0], ",") {
	case strings.Join(csvHeader, ","):
	case strings.Join(csvSessionHeader, ","):
		sessions = true
	default:
		return Trace{}, fmt.Errorf("reqtrace: missing CSV column header %q or %q",
			strings.Join(csvHeader, ","), strings.Join(csvSessionHeader, ","))
	}
	width := len(csvHeader)
	if sessions {
		width = len(csvSessionHeader)
	}
	var t Trace
	for i, row := range rows[1:] {
		if len(row) != width {
			return Trace{}, fmt.Errorf("reqtrace: CSV row %d has %d fields, want %d", i+1, len(row), width)
		}
		arrival, err1 := strconv.ParseInt(row[0], 10, 64)
		prio, err2 := strconv.Atoi(row[3])
		prompt, err3 := strconv.Atoi(row[4])
		output, err4 := strconv.Atoi(row[5])
		rec := Record{
			Class: row[1],
			SLO:   row[2],
		}
		var err5 error
		if sessions {
			rec.SessionID = row[6]
			rec.Turn, err5 = strconv.Atoi(row[7])
		}
		for _, err := range []error{err1, err2, err3, err4, err5} {
			if err != nil {
				return Trace{}, fmt.Errorf("reqtrace: CSV row %d: %w", i+1, err)
			}
		}
		rec.Arrival = time.Duration(arrival)
		rec.Priority = prio
		rec.Prompt = prompt
		rec.Output = output
		t.Records = append(t.Records, rec)
	}
	return t, nil
}

// ReadFile reads and validates a trace file of either format.
func ReadFile(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, fmt.Errorf("reqtrace: %w", err)
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return Trace{}, fmt.Errorf("reqtrace: %s: %w", path, strip(err))
	}
	return t, nil
}

// WriteFile writes the trace to path: CSV when the path ends in .csv, JSONL
// otherwise.
func (t Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("reqtrace: %w", err)
	}
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		err = t.WriteCSV(f)
	} else {
		err = t.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// strip removes the redundant "reqtrace: " prefix of a nested error so
// ReadFile can prepend the path without stuttering.
func strip(err error) error {
	if s, ok := strings.CutPrefix(err.Error(), "reqtrace: "); ok {
		return fmt.Errorf("%s", s)
	}
	return err
}
