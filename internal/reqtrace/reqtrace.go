// Package reqtrace captures, stores, replays and calibrates request-level
// serving traces: the (arrival offset, client class, SLO, priority, prompt
// tokens, output tokens) tuples a multi-tenant inference service observes,
// plus the session identity (SessionID/Turn) of multi-turn workloads.
// It closes the specify→observe→calibrate loop around internal/servegen:
// a synthetic mix generates a stream, a Capture hook records what a
// Serve/ServeCluster run actually completed, Replay turns the trace back
// into the byte-identical request stream (optionally rate-scaled, truncated
// or looped), and Fit recovers a servegen.Mix — class shares, arrival
// burstiness, on-off duty cycles, length distributions — from any trace so
// hand-picked mixes can be replaced by calibrated ones.
//
// Traces persist as versioned JSONL or CSV (see io.go); both round-trip
// exactly, so capture→write→read→replay reproduces a serving report byte
// for byte.
//
// Naming note: this package records *serving requests*. The similarly named
// internal/trace package records *allocator events* (every Alloc/Free a
// workload issues against a memory allocator, the paper's Figure 5
// streams); the two layers observe different systems and share nothing but
// the word.
package reqtrace

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/serve"
)

// Version is the trace-format version this package reads and writes.
// Readers reject traces from a newer format rather than misparse them.
const Version = 1

// Record is one request of a trace: everything needed to re-issue the
// request on a serving substrate. Arrival is the offset from the trace
// start on the virtual clock; token counts are the request's prompt and
// output lengths.
type Record struct {
	Arrival  time.Duration
	Class    string
	SLO      string
	Priority int
	Prompt   int
	Output   int

	// SessionID and Turn carry the request's multi-turn session identity
	// (serve.Request.SessionID/Turn). Both zero for one-shot requests —
	// traces captured before the session format extension read back with
	// exactly these zero values.
	SessionID string
	Turn      int
}

// Trace is an ordered request trace: records sorted by arrival offset.
type Trace struct {
	Records []Record
}

// FromRequests converts a request stream into a trace. Records are stably
// sorted by (arrival, ID), which canonicalizes any completion or shard
// order back to the generator's arrival order — the property that makes
// generate→capture→replay round-trip exactly.
func FromRequests(reqs []serve.Request) Trace {
	sorted := append([]serve.Request(nil), reqs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].ArrivalAt != sorted[j].ArrivalAt {
			return sorted[i].ArrivalAt < sorted[j].ArrivalAt
		}
		return sorted[i].ID < sorted[j].ID
	})
	t := Trace{Records: make([]Record, len(sorted))}
	for i, r := range sorted {
		t.Records[i] = Record{
			Arrival:   r.ArrivalAt,
			Class:     r.Class,
			SLO:       r.SLO,
			Priority:  r.Priority,
			Prompt:    r.PromptLen,
			Output:    r.OutputLen,
			SessionID: r.SessionID,
			Turn:      r.Turn,
		}
	}
	return t
}

// Requests converts the trace back into a request stream, numbering the
// requests 0..n-1 in record order — exactly how servegen numbers a
// generated stream after its arrival sort.
func (t Trace) Requests() []serve.Request {
	out := make([]serve.Request, len(t.Records))
	for i, r := range t.Records {
		out[i] = serve.Request{
			ID:        i,
			Class:     r.Class,
			SLO:       r.SLO,
			Priority:  r.Priority,
			ArrivalAt: r.Arrival,
			PromptLen: r.Prompt,
			OutputLen: r.Output,
			SessionID: r.SessionID,
			Turn:      r.Turn,
		}
	}
	return out
}

// Validate checks the trace is well-formed: at least one record, arrivals
// non-negative and non-decreasing, token counts positive, and session
// identity consistent — a sessionless record carries Turn 0, and a session's
// turns appear in strictly increasing Turn order along the trace (arrival
// order), since turn N+1 cannot have been observed before turn N.
func (t Trace) Validate() error {
	if len(t.Records) == 0 {
		return fmt.Errorf("reqtrace: empty trace")
	}
	lastTurn := map[string]int{}
	for i, r := range t.Records {
		if r.Arrival < 0 {
			return fmt.Errorf("reqtrace: record %d arrival %v", i, r.Arrival)
		}
		if i > 0 && r.Arrival < t.Records[i-1].Arrival {
			return fmt.Errorf("reqtrace: record %d arrival %v before record %d at %v",
				i, r.Arrival, i-1, t.Records[i-1].Arrival)
		}
		if r.Prompt <= 0 || r.Output <= 0 {
			return fmt.Errorf("reqtrace: record %d tokens prompt=%d output=%d", i, r.Prompt, r.Output)
		}
		if r.SessionID == "" {
			if r.Turn != 0 {
				return fmt.Errorf("reqtrace: record %d has turn %d without a session id", i, r.Turn)
			}
			continue
		}
		if r.Turn < 0 {
			return fmt.Errorf("reqtrace: record %d session %q turn %d", i, r.SessionID, r.Turn)
		}
		if last, seen := lastTurn[r.SessionID]; seen && r.Turn <= last {
			return fmt.Errorf("reqtrace: record %d session %q turn %d not after turn %d",
				i, r.SessionID, r.Turn, last)
		}
		lastTurn[r.SessionID] = r.Turn
	}
	return nil
}

// Span is the arrival offset of the last record — the trace's horizon.
func (t Trace) Span() time.Duration {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].Arrival
}

// ClassStats is the per-client-class slice of a trace summary.
type ClassStats struct {
	Class string
	SLO   string

	Requests int
	Share    float64 // fraction of the trace's requests
	// RatePerSec is the class's mean arrival rate over the trace span.
	RatePerSec float64

	MeanPrompt, MeanOutput float64
	MinPrompt, MaxPrompt   int
	MinOutput, MaxOutput   int
}

// Stats summarizes a trace: aggregate rate and token means plus the
// per-class breakdown, classes sorted by name.
type Stats struct {
	Requests   int
	Span       time.Duration
	RatePerSec float64

	MeanPrompt, MeanOutput float64

	Classes []ClassStats
}

// Stats computes the trace summary. An empty class name reports as
// "default", matching how serve reports it.
func (t Trace) Stats() Stats {
	s := Stats{Requests: len(t.Records), Span: t.Span()}
	if s.Requests == 0 {
		return s
	}
	if sec := s.Span.Seconds(); sec > 0 {
		s.RatePerSec = float64(s.Requests) / sec
	}
	byClass := map[string]*ClassStats{}
	for _, r := range t.Records {
		s.MeanPrompt += float64(r.Prompt)
		s.MeanOutput += float64(r.Output)
		name := r.Class
		if name == "" {
			name = "default"
		}
		c := byClass[name]
		if c == nil {
			c = &ClassStats{Class: name, SLO: r.SLO,
				MinPrompt: r.Prompt, MaxPrompt: r.Prompt,
				MinOutput: r.Output, MaxOutput: r.Output}
			byClass[name] = c
		}
		c.Requests++
		c.MeanPrompt += float64(r.Prompt)
		c.MeanOutput += float64(r.Output)
		if r.Prompt < c.MinPrompt {
			c.MinPrompt = r.Prompt
		}
		if r.Prompt > c.MaxPrompt {
			c.MaxPrompt = r.Prompt
		}
		if r.Output < c.MinOutput {
			c.MinOutput = r.Output
		}
		if r.Output > c.MaxOutput {
			c.MaxOutput = r.Output
		}
	}
	s.MeanPrompt /= float64(s.Requests)
	s.MeanOutput /= float64(s.Requests)
	names := make([]string, 0, len(byClass))
	for name := range byClass {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := byClass[name]
		c.Share = float64(c.Requests) / float64(s.Requests)
		if sec := s.Span.Seconds(); sec > 0 {
			c.RatePerSec = float64(c.Requests) / sec
		}
		c.MeanPrompt /= float64(c.Requests)
		c.MeanOutput /= float64(c.Requests)
		s.Classes = append(s.Classes, *c)
	}
	return s
}
