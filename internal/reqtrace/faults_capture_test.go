package reqtrace

import (
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/servegen"
	"repro/internal/sim"
)

// TestCaptureOnceUnderFaults is the retry-dedupe regression: a request that
// crashes mid-decode and completes on a later attempt must hit the
// OnComplete hook exactly once, so a capture taken under faults is still a
// valid trace — no duplicated records, count equal to Served — and round-
// trips through replay.
func TestCaptureOnceUnderFaults(t *testing.T) {
	mix := servegen.Mixes()[0]
	reqs, err := mix.Generate(40, 11)
	if err != nil {
		t.Fatal(err)
	}
	cap := NewCapture()
	factory := func(int) serve.CacheManager { return chunkedMgr(8 * sim.GiB) }
	rep, err := serve.ServeCluster(reqs, factory, serve.ClusterConfig{
		Replicas: 2,
		Server:   serve.ServerConfig{MaxBatch: 4, OnComplete: cap.Hook()},
		Faults: serve.FaultConfig{Plan: []serve.FaultEvent{
			{At: 300 * time.Millisecond, Kind: serve.FaultCrash, Replica: 0},
			{At: 600 * time.Millisecond, Kind: serve.FaultRestart, Replica: 0},
			{At: 900 * time.Millisecond, Kind: serve.FaultCrash, Replica: 1},
			{At: 1200 * time.Millisecond, Kind: serve.FaultRestart, Replica: 1},
		}},
		Recovery: serve.RecoveryConfig{Retries: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatalf("testbed too calm: no retries, dedupe untested (report %+v)", rep.Report)
	}
	if cap.Count() != rep.Served {
		t.Fatalf("captured %d completions, served %d — OnComplete fired more or less than once per request",
			cap.Count(), rep.Served)
	}
	seen := map[int]bool{}
	for _, r := range cap.Trace().Requests() {
		if seen[r.ID] {
			t.Fatalf("request %d captured twice", r.ID)
		}
		seen[r.ID] = true
	}

	// The faulty-run capture is an ordinary trace: replaying it through a
	// fault-free server serves every record exactly once.
	replayed, err := cap.Trace().Replay(ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	again, err := serve.Serve(replayed, chunkedMgr(8*sim.GiB), serve.ServerConfig{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if again.Served != cap.Count() {
		t.Fatalf("replayed %d of %d captured requests", again.Served, cap.Count())
	}
}
