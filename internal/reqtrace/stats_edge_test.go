package reqtrace

import (
	"math"
	"testing"
	"time"
)

// TestStatsEdgeCases hardens Stats against the degenerate shapes a capture
// can legitimately produce: the zero-length trace a capture that saw no
// completions yields, and the single-record trace whose span — last arrival
// offset — is zero, which must not divide through to Inf or NaN rates.
func TestStatsEdgeCases(t *testing.T) {
	finite := func(t *testing.T, label string, v float64) {
		t.Helper()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v", label, v)
		}
	}
	checkFinite := func(t *testing.T, s Stats) {
		t.Helper()
		finite(t, "RatePerSec", s.RatePerSec)
		finite(t, "MeanPrompt", s.MeanPrompt)
		finite(t, "MeanOutput", s.MeanOutput)
		for _, c := range s.Classes {
			finite(t, c.Class+".RatePerSec", c.RatePerSec)
			finite(t, c.Class+".Share", c.Share)
			finite(t, c.Class+".MeanPrompt", c.MeanPrompt)
			finite(t, c.Class+".MeanOutput", c.MeanOutput)
		}
	}

	for _, tc := range []struct {
		name  string
		trace Trace
		reqs  int
		span  time.Duration
		rate  float64
	}{
		{name: "empty", trace: Trace{}},
		{
			// One record arriving at offset 0: span 0, so no rate is
			// computable — it must report 0, not +Inf.
			name: "single-at-zero",
			trace: Trace{Records: []Record{
				{Arrival: 0, Class: "chat", SLO: "interactive", Prompt: 120, Output: 64},
			}},
			reqs: 1,
		},
		{
			// One record at a positive offset: the span is that offset and
			// the rate is finite.
			name: "single-late",
			trace: Trace{Records: []Record{
				{Arrival: 2 * time.Second, Prompt: 8, Output: 4},
			}},
			reqs: 1, span: 2 * time.Second, rate: 0.5,
		},
		{
			// All records at the same instant: positive count, zero span.
			name: "simultaneous",
			trace: Trace{Records: []Record{
				{Arrival: 0, Prompt: 10, Output: 5},
				{Arrival: 0, Prompt: 30, Output: 15},
			}},
			reqs: 2,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.trace.Stats()
			checkFinite(t, s)
			if s.Requests != tc.reqs {
				t.Errorf("Requests = %d, want %d", s.Requests, tc.reqs)
			}
			if s.Span != tc.span {
				t.Errorf("Span = %v, want %v", s.Span, tc.span)
			}
			if s.RatePerSec != tc.rate {
				t.Errorf("RatePerSec = %g, want %g", s.RatePerSec, tc.rate)
			}
		})
	}

	// The single-record class row carries the degenerate moments exactly.
	s := Trace{Records: []Record{
		{Arrival: 0, Class: "chat", SLO: "interactive", Prompt: 120, Output: 64},
	}}.Stats()
	if len(s.Classes) != 1 {
		t.Fatalf("classes = %d", len(s.Classes))
	}
	c := s.Classes[0]
	if c.Share != 1 || c.MeanPrompt != 120 || c.MeanOutput != 64 ||
		c.MinPrompt != 120 || c.MaxPrompt != 120 || c.RatePerSec != 0 {
		t.Errorf("single-record class row %+v", c)
	}
}
