package reqtrace

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/caching"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/servegen"
	"repro/internal/sim"
)

func newServeAlloc(capacity int64) memalloc.Allocator {
	dev := gpu.NewDevice("t", capacity)
	return caching.New(cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel()))
}

func chunkedMgr(capacity int64) serve.CacheManager {
	return serve.NewChunkedKV(newServeAlloc(capacity), model.OPT1_3B, 64)
}

// TestServeRoundTripByteIdentical is the tentpole acceptance at serve
// level, for every canonical mix: generate → serve with a capture hook →
// trace → file → replay → serve again renders a byte-identical report.
func TestServeRoundTripByteIdentical(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 60
	}
	for _, mix := range servegen.Mixes() {
		t.Run(mix.Name, func(t *testing.T) {
			reqs, err := mix.Generate(n, 7)
			if err != nil {
				t.Fatal(err)
			}
			cap := NewCapture()
			base, err := serve.Serve(reqs, chunkedMgr(8*sim.GiB), serve.ServerConfig{
				MaxBatch: 8, OnComplete: cap.Hook(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if cap.Count() != n {
				t.Fatalf("captured %d of %d completions", cap.Count(), n)
			}

			// Through the wire: write, read back, replay.
			var buf bytes.Buffer
			if err := cap.Trace().WriteJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := loaded.Replay(ReplayOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(replayed, reqs) {
				t.Fatal("replayed stream differs from the generated one")
			}

			again, err := serve.Serve(replayed, chunkedMgr(8*sim.GiB), serve.ServerConfig{MaxBatch: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, base) {
				t.Fatalf("replayed serving report differs:\n%+v\nvs\n%+v", again, base)
			}
		})
	}
}

// TestClusterRoundTripByteIdentical repeats the round trip at cluster level
// with the whole elastic machinery on — autoscaling between 1 and 3
// replicas plus work-stealing — so completions interleave across replicas
// in an order the capture must canonicalize away.
func TestClusterRoundTripByteIdentical(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 60
	}
	mix := servegen.MixedBursty()
	reqs, err := mix.WithRate(mix.Rate*4).Generate(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serve.ClusterConfig{
		MinReplicas: 1,
		MaxReplicas: 3,
		Steal:       true,
		Dispatch:    serve.DispatchJSQ,
		Server:      serve.ServerConfig{MaxBatch: 4, Aging: 2 * time.Second},
	}
	mk := func(int) serve.CacheManager { return chunkedMgr(2 * sim.GiB) }

	cap := NewCapture()
	capCfg := cfg
	capCfg.Server.OnComplete = cap.Hook()
	base, err := serve.ServeCluster(reqs, mk, capCfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Spawns == 0 {
		t.Fatal("test workload never scaled up — not exercising elasticity")
	}
	if cap.Count() != n {
		t.Fatalf("captured %d of %d completions", cap.Count(), n)
	}

	replayed, err := cap.Trace().Replay(ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, reqs) {
		t.Fatal("cluster-captured replay differs from the generated stream")
	}
	again, err := serve.ServeCluster(replayed, mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, base) {
		t.Fatal("replayed cluster report differs from the original")
	}
}

// TestCaptureCanonicalOrder: a capture fed completions in an arbitrary
// order still produces the arrival-sorted trace.
func TestCaptureCanonicalOrder(t *testing.T) {
	cap := NewCapture()
	hook := cap.Hook()
	hook(serve.Request{ID: 2, ArrivalAt: 30, PromptLen: 1, OutputLen: 1})
	hook(serve.Request{ID: 0, ArrivalAt: 10, PromptLen: 1, OutputLen: 1})
	hook(serve.Request{ID: 1, ArrivalAt: 10, PromptLen: 2, OutputLen: 1})
	tr := cap.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Records[0].Arrival != 10 || tr.Records[0].Prompt != 1 ||
		tr.Records[1].Arrival != 10 || tr.Records[1].Prompt != 2 ||
		tr.Records[2].Arrival != 30 {
		t.Fatalf("capture did not canonicalize: %+v", tr.Records)
	}
}
