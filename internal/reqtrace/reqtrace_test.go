package reqtrace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/servegen"
)

// genTrace is a captured mixed-bursty stream all the format tests share.
func genTrace(t *testing.T, n int) Trace {
	t.Helper()
	reqs, err := servegen.MixedBursty().Generate(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	return FromRequests(reqs)
}

// TestRequestsRoundTrip: FromRequests ∘ Requests is the identity on a
// generated stream — the trace layer neither loses nor reorders anything.
func TestRequestsRoundTrip(t *testing.T) {
	reqs, err := servegen.MixedBursty().Generate(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := FromRequests(reqs).Requests()
	if !reflect.DeepEqual(got, reqs) {
		t.Fatal("FromRequests∘Requests is not the identity on a generated stream")
	}
}

// TestFileFormatsRoundTrip: JSONL and CSV both reproduce the trace exactly,
// and Read sniffs either format.
func TestFileFormatsRoundTrip(t *testing.T) {
	tr := genTrace(t, 150)
	for _, f := range []struct {
		name  string
		write func(Trace, *bytes.Buffer) error
	}{
		{"jsonl", func(tr Trace, b *bytes.Buffer) error { return tr.WriteJSONL(b) }},
		{"csv", func(tr Trace, b *bytes.Buffer) error { return tr.WriteCSV(b) }},
	} {
		t.Run(f.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := f.write(tr, &buf); err != nil {
				t.Fatal(err)
			}
			got, err := Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tr) {
				t.Fatalf("%s round trip altered the trace", f.name)
			}
			// Re-encoding the decoded trace is byte-identical.
			var buf2 bytes.Buffer
			if err := f.write(got, &buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatalf("%s re-encoding is not byte-identical", f.name)
			}
		})
	}
}

// TestWriteFilePicksFormat: .csv paths write CSV, anything else JSONL, and
// ReadFile loads both.
func TestWriteFilePicksFormat(t *testing.T) {
	tr := genTrace(t, 40)
	dir := t.TempDir()
	for _, name := range []string{"t.jsonl", "t.csv", "t.trace"} {
		path := dir + "/" + name
		if err := tr.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("%s: file round trip altered the trace", name)
		}
	}
}

// TestReadRejects covers the reader's failure modes: junk, newer versions,
// malformed records and invalid traces, each with a clear error.
func TestReadRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"junk", "hello\n", "unrecognized trace format"},
		{"newer-jsonl", `{"format":"reqtrace","version":99}` + "\n", "newer than supported"},
		{"newer-csv", "#reqtrace v99\n", "newer than supported"},
		{"bad-header", `{"format":"memtrace","version":1}` + "\n", "bad JSONL header"},
		{"bad-record", `{"format":"reqtrace","version":1}` + "\n" + `{"arrival_ns":"x"}` + "\n", "line 2"},
		{"empty-trace", `{"format":"reqtrace","version":1}` + "\n", "empty trace"},
		{"negative-tokens", `{"format":"reqtrace","version":1}` + "\n" +
			`{"arrival_ns":5,"prompt_tokens":-1,"output_tokens":4}` + "\n", "tokens"},
		{"unsorted", `{"format":"reqtrace","version":1}` + "\n" +
			`{"arrival_ns":5,"prompt_tokens":1,"output_tokens":1}` + "\n" +
			`{"arrival_ns":4,"prompt_tokens":1,"output_tokens":1}` + "\n", "before record"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want mention of %q", err, c.want)
			}
		})
	}
}

// TestReadFileMissing: a nonexistent path is a clear error naming the path.
func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile("/nonexistent/trace.jsonl")
	if err == nil || !strings.Contains(err.Error(), "/nonexistent/trace.jsonl") {
		t.Fatalf("error %v does not name the missing path", err)
	}
}

// TestStats: shares sum to 1, per-class rosters match the mix, and rates
// are counts over the span.
func TestStats(t *testing.T) {
	tr := genTrace(t, 300)
	s := tr.Stats()
	if s.Requests != 300 {
		t.Fatalf("requests %d", s.Requests)
	}
	if s.Span != tr.Records[len(tr.Records)-1].Arrival {
		t.Fatalf("span %v", s.Span)
	}
	mix := servegen.MixedBursty()
	if len(s.Classes) != len(mix.Classes) {
		t.Fatalf("%d classes, mix has %d", len(s.Classes), len(mix.Classes))
	}
	var share float64
	total := 0
	for _, c := range s.Classes {
		share += c.Share
		total += c.Requests
		if c.MinPrompt <= 0 || c.MaxPrompt < c.MinPrompt {
			t.Fatalf("class %s prompt range [%d,%d]", c.Class, c.MinPrompt, c.MaxPrompt)
		}
		wantRate := float64(c.Requests) / s.Span.Seconds()
		if diff := c.RatePerSec - wantRate; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("class %s rate %g, want %g", c.Class, c.RatePerSec, wantRate)
		}
	}
	if total != 300 || share < 0.999 || share > 1.001 {
		t.Fatalf("class totals %d, share sum %g", total, share)
	}
}

// TestReplayOptions: zero options are the identity, N truncates and loops
// (with the constant-period shift), and Scale rescales arrivals only.
func TestReplayOptions(t *testing.T) {
	tr := genTrace(t, 100)
	orig := tr.Requests()

	got, err := tr.Replay(ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatal("zero-option replay is not the identity")
	}

	short, err := tr.Replay(ReplayOptions{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(short) != 10 || !reflect.DeepEqual(short, orig[:10]) {
		t.Fatal("truncating replay differs from the trace prefix")
	}

	long, err := tr.Replay(ReplayOptions{N: 150})
	if err != nil {
		t.Fatal(err)
	}
	span := tr.Span()
	period := span + span/time.Duration(len(tr.Records)-1)
	for i := 100; i < 150; i++ {
		want := tr.Records[i-100].Arrival + period
		if long[i].ArrivalAt != want {
			t.Fatalf("looped request %d arrives at %v, want %v", i, long[i].ArrivalAt, want)
		}
		if long[i].PromptLen != tr.Records[i-100].Prompt {
			t.Fatalf("looped request %d lost its token counts", i)
		}
		if long[i].ID != i {
			t.Fatalf("looped request %d has ID %d", i, long[i].ID)
		}
	}

	fast, err := tr.Replay(ReplayOptions{Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast {
		if fast[i].ArrivalAt != time.Duration(float64(orig[i].ArrivalAt)/2) {
			t.Fatalf("request %d not rescaled", i)
		}
		if fast[i].PromptLen != orig[i].PromptLen || fast[i].OutputLen != orig[i].OutputLen {
			t.Fatalf("request %d token counts scaled", i)
		}
	}

	for _, bad := range []ReplayOptions{{N: -1}, {Scale: -2}} {
		if _, err := tr.Replay(bad); err == nil {
			t.Fatalf("replay accepted %+v", bad)
		}
	}
}
