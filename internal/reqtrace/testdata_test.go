package reqtrace

import (
	"path/filepath"
	"testing"
)

// TestLoadSampleTrace covers the file loader on the checked-in sample — a
// small trace styled after the Azure LLM inference traces (code and
// conversation classes with long-prompt/short-output and long-output
// shapes, plus an on-off batch tenant) — so short test runs exercise the
// reader, Stats and Fit on real file bytes without any network.
func TestLoadSampleTrace(t *testing.T) {
	tr, err := ReadFile(filepath.Join("testdata", "azure_llm_sample.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Requests != 96 {
		t.Fatalf("sample has %d requests, want 96", s.Requests)
	}
	want := map[string]string{
		"code":         "interactive",
		"conversation": "standard",
		"batch-eval":   "batch",
	}
	if len(s.Classes) != len(want) {
		t.Fatalf("sample has %d classes, want %d", len(s.Classes), len(want))
	}
	for _, c := range s.Classes {
		slo, ok := want[c.Class]
		if !ok || c.SLO != slo {
			t.Fatalf("unexpected class %s/%s", c.Class, c.SLO)
		}
		if c.Requests == 0 || c.MeanPrompt <= 0 {
			t.Fatalf("class %s degenerate: %+v", c.Class, c)
		}
	}

	// The loaded trace replays and fits end to end.
	reqs, err := tr.Replay(ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 96 {
		t.Fatalf("replayed %d requests", len(reqs))
	}
	m, err := Fit(tr)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FitError(tr, m, 96, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RateErr > 0.25 {
		t.Errorf("sample fit rate error %.1f%%", 100*rep.RateErr)
	}
}
