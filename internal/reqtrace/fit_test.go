package reqtrace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/servegen"
)

// fitN is the fitting horizon: enough samples that moment estimates settle.
func fitN(t *testing.T) int {
	if testing.Short() {
		return 200
	}
	return 600
}

// TestFitRecoversCanonicalMixes: fitting a captured canonical stream
// recovers the class roster, shares, aggregate rate and length means
// within tolerance — the calibration loop's basic soundness.
func TestFitRecoversCanonicalMixes(t *testing.T) {
	n := fitN(t)
	for _, mix := range servegen.Mixes() {
		t.Run(mix.Name, func(t *testing.T) {
			reqs, err := mix.Generate(n, 7)
			if err != nil {
				t.Fatal(err)
			}
			tr := FromRequests(reqs)
			m, err := Fit(tr)
			if err != nil {
				t.Fatal(err)
			}
			if len(m.Classes) != len(mix.Classes) {
				t.Fatalf("fitted %d classes, mix has %d", len(m.Classes), len(mix.Classes))
			}
			stats := tr.Stats()
			if e := relErr(m.Rate, stats.RatePerSec); e > 1e-9 {
				t.Fatalf("fitted rate %g != observed %g", m.Rate, stats.RatePerSec)
			}
			var share float64
			for _, c := range m.Classes {
				share += c.Share
				cs := findClass(stats, c.Name)
				if cs == nil {
					t.Fatalf("fitted class %q not in the trace", c.Name)
				}
				if c.SLO != cs.SLO {
					t.Fatalf("class %s SLO %q, trace has %q", c.Name, c.SLO, cs.SLO)
				}
				if e := relErr(c.Share, cs.Share); e > 1e-9 {
					t.Fatalf("class %s share %g, trace share %g", c.Name, c.Share, cs.Share)
				}
				// The fitted length distributions match the observed means
				// within moment-fit tolerance.
				if e := relErr(c.Prompt.MeanTokens(), cs.MeanPrompt); e > 0.30 {
					t.Errorf("class %s prompt mean off by %.0f%%", c.Name, 100*e)
				}
				if e := relErr(c.Output.MeanTokens(), cs.MeanOutput); e > 0.30 {
					t.Errorf("class %s output mean off by %.0f%%", c.Name, 100*e)
				}
			}
			if share < 0.999 || share > 1.001 {
				t.Fatalf("fitted shares sum to %g", share)
			}
		})
	}
}

// TestFitErrorWithinTolerance is the acceptance bound: a stream regenerated
// from the fitted mix matches the reference trace within 15% on mean rate
// and 25% on mean prompt/output length.
func TestFitErrorWithinTolerance(t *testing.T) {
	n := fitN(t)
	for _, mix := range servegen.Mixes() {
		t.Run(mix.Name, func(t *testing.T) {
			reqs, err := mix.Generate(n, 7)
			if err != nil {
				t.Fatal(err)
			}
			tr := FromRequests(reqs)
			m, err := Fit(tr)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := FitError(tr, m, n, 11)
			if err != nil {
				t.Fatal(err)
			}
			if rep.RateErr > 0.15 {
				t.Errorf("aggregate rate error %.1f%% above 15%%", 100*rep.RateErr)
			}
			if rep.PromptMeanErr > 0.25 || rep.OutputMeanErr > 0.25 {
				t.Errorf("aggregate length error prompt %.1f%% output %.1f%% above 25%%",
					100*rep.PromptMeanErr, 100*rep.OutputMeanErr)
			}
			if len(rep.Classes) != len(mix.Classes) {
				t.Fatalf("fit report covers %d classes, mix has %d", len(rep.Classes), len(mix.Classes))
			}
			for _, ce := range rep.Classes {
				if ce.TraceRequests == 0 || ce.SynthRequests == 0 {
					t.Errorf("class %s missing on one side: %d/%d", ce.Class, ce.TraceRequests, ce.SynthRequests)
				}
				if ce.PromptKS < 0 || ce.PromptKS > 1 || ce.OutputKS < 0 || ce.OutputKS > 1 {
					t.Errorf("class %s KS outside [0,1]: %+v", ce.Class, ce)
				}
			}
		})
	}
}

// TestFitArrivalFamilies pins the per-family recovery on single-class
// streams: Poisson stays Poisson, a CV-2.5 Gamma is recovered as Gamma with
// a CV in the right range, and a 25%-duty on-off cycle is detected with its
// duty and cycle in range.
func TestFitArrivalFamilies(t *testing.T) {
	n := fitN(t)
	single := func(arr servegen.ArrivalProcess) servegen.Mix {
		return servegen.Mix{
			Name: "single", Rate: 5,
			Classes: []servegen.ClientClass{{
				Name: "c", SLO: servegen.SLOStandard, Share: 1,
				Arrival: arr,
				Prompt:  servegen.Uniform(32, 256),
				Output:  servegen.Uniform(16, 128),
			}},
		}
	}
	fit1 := func(t *testing.T, arr servegen.ArrivalProcess) servegen.ArrivalProcess {
		t.Helper()
		reqs, err := single(arr).Generate(n, 7)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Fit(FromRequests(reqs))
		if err != nil {
			t.Fatal(err)
		}
		return m.Classes[0].Arrival
	}

	if got := fit1(t, servegen.Poisson()); got.Kind != servegen.ArrivalPoisson {
		t.Errorf("poisson fitted as %+v", got)
	}
	if got := fit1(t, servegen.Bursty(2.5)); got.Kind != servegen.ArrivalGamma {
		t.Errorf("gamma cv=2.5 fitted as %+v", got)
	} else if got.CV < 1.5 || got.CV > 4 {
		t.Errorf("gamma cv=2.5 fitted with cv %.2f", got.CV)
	}
	if got := fit1(t, servegen.OnOff(0.25, 20*time.Second)); got.Kind != servegen.ArrivalOnOff {
		t.Errorf("on-off fitted as %+v", got)
	} else {
		if got.OnFraction < 0.1 || got.OnFraction > onOffDutyMax {
			t.Errorf("on-off duty 0.25 fitted as %.2f", got.OnFraction)
		}
		if got.Cycle < 10*time.Second || got.Cycle > 40*time.Second {
			t.Errorf("on-off cycle 20s fitted as %v", got.Cycle)
		}
	}
}

// TestFitDegenerate: identical lengths fit a deterministic distribution;
// zero-span and empty traces fail with clear errors.
func TestFitDegenerate(t *testing.T) {
	tr := Trace{Records: []Record{
		{Arrival: 0, Prompt: 64, Output: 8},
		{Arrival: time.Second, Prompt: 64, Output: 8},
		{Arrival: 2 * time.Second, Prompt: 64, Output: 8},
	}}
	m, err := Fit(tr)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Classes[0]
	if c.Name != "default" {
		t.Fatalf("empty class fitted as %q", c.Name)
	}
	if c.Prompt.Kind != servegen.DistDeterministic || c.Prompt.Value != 64 {
		t.Fatalf("identical prompts fitted as %+v", c.Prompt)
	}
	if c.Output.Kind != servegen.DistDeterministic || c.Output.Value != 8 {
		t.Fatalf("identical outputs fitted as %+v", c.Output)
	}

	if _, err := Fit(Trace{}); err == nil {
		t.Error("empty trace fitted")
	}
	zero := Trace{Records: []Record{{Prompt: 1, Output: 1}}}
	if _, err := Fit(zero); err == nil || !strings.Contains(err.Error(), "span") {
		t.Errorf("zero-span trace: %v", err)
	}
}

func findClass(s Stats, name string) *ClassStats {
	for i := range s.Classes {
		if s.Classes[i].Class == name {
			return &s.Classes[i]
		}
	}
	return nil
}

// TestFitExtremeCVGammaShortHorizonFitsAsOnOff pins the known-limitation
// documented in fitArrival: an extreme-CV Gamma (bursty) arrival stream on
// a short horizon clumps into few dense bursts, passes the on-off duty
// cycle screen — which runs before the CV families — and fits as on-off
// rather than Gamma. This is the currently accepted misread (see
// ROADMAP's real-trace item); when fitArrival learns to tell heavy-tailed
// gaps from a duty cycle, flip the expected Kind here to ArrivalGamma.
func TestFitExtremeCVGammaShortHorizonFitsAsOnOff(t *testing.T) {
	mix := servegen.Mix{
		Name: "extreme", Rate: 5,
		Classes: []servegen.ClientClass{{
			Name: "c", SLO: servegen.SLOStandard, Share: 1,
			Arrival: servegen.Bursty(4.0),
			Prompt:  servegen.Uniform(32, 256),
			Output:  servegen.Uniform(16, 128),
		}},
	}
	// Short horizon: a few hundred requests, as in the trap's statement.
	reqs, err := mix.Generate(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(FromRequests(reqs))
	if err != nil {
		t.Fatal(err)
	}
	got := m.Classes[0].Arrival
	if got.Kind != servegen.ArrivalOnOff {
		t.Fatalf("extreme-CV Gamma on a short horizon fitted as %+v — "+
			"if fitArrival was fixed to recognize heavy-tailed gaps, update "+
			"this regression test and the known-limitation comment", got)
	}
}
