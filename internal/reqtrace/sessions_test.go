package reqtrace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/servegen"
	"repro/internal/sim"
)

func sessionTrace() Trace {
	return Trace{Records: []Record{
		{Arrival: 0, Class: "chat", SLO: "interactive", Priority: 2, Prompt: 64, Output: 16, SessionID: "c#0", Turn: 0},
		{Arrival: 100 * time.Millisecond, Class: "batch", SLO: "batch", Prompt: 128, Output: 32},
		{Arrival: 2 * time.Second, Class: "chat", SLO: "interactive", Priority: 2, Prompt: 104, Output: 20, SessionID: "c#0", Turn: 1},
		{Arrival: 5 * time.Second, Class: "chat", SLO: "interactive", Priority: 2, Prompt: 148, Output: 12, SessionID: "c#0", Turn: 2},
	}}
}

// TestSessionTraceRoundTrip: session identity survives both file formats
// numerically exactly, alongside sessionless records in the same trace.
func TestSessionTraceRoundTrip(t *testing.T) {
	want := sessionTrace()
	for _, f := range []struct {
		name  string
		write func(Trace, *bytes.Buffer) error
	}{
		{"jsonl", func(tr Trace, b *bytes.Buffer) error { return tr.WriteJSONL(b) }},
		{"csv", func(tr Trace, b *bytes.Buffer) error { return tr.WriteCSV(b) }},
	} {
		var buf bytes.Buffer
		if err := f.write(want, &buf); err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s round trip diverged:\ngot  %+v\nwant %+v", f.name, got, want)
		}
	}
}

// TestSessionlessOutputUnchanged: a trace with no sessions must serialize
// byte-for-byte in the pre-session layouts — no new columns, no new keys.
func TestSessionlessOutputUnchanged(t *testing.T) {
	tr := Trace{Records: []Record{
		{Arrival: 0, Class: "chat", SLO: "interactive", Priority: 2, Prompt: 64, Output: 16},
		{Arrival: time.Second, Prompt: 32, Output: 8},
	}}
	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(jsonl.String(), "session_id") || strings.Contains(jsonl.String(), "turn") {
		t.Fatalf("sessionless JSONL mentions session fields:\n%s", jsonl.String())
	}
	var csv bytes.Buffer
	if err := tr.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(csv.String(), "session_id") {
		t.Fatalf("sessionless CSV grew the session columns:\n%s", csv.String())
	}
	if !strings.Contains(csv.String(), "arrival_ns,class,slo,priority,prompt_tokens,output_tokens\n") {
		t.Fatalf("sessionless CSV header changed:\n%s", csv.String())
	}
}

// TestPreSessionFilesStillRead: v1 fixtures written before the session
// extension — six-column CSV, JSONL without session keys — read back with
// zero session fields.
func TestPreSessionFilesStillRead(t *testing.T) {
	jsonl := `{"format":"reqtrace","version":1}
{"arrival_ns":0,"class":"chat","slo":"interactive","priority":2,"prompt_tokens":120,"output_tokens":64}
{"arrival_ns":212334791,"prompt_tokens":32,"output_tokens":8}
`
	csv := "#reqtrace v1\narrival_ns,class,slo,priority,prompt_tokens,output_tokens\n0,chat,interactive,2,120,64\n212334791,,,0,32,8\n"
	for name, text := range map[string]string{"jsonl": jsonl, "csv": csv} {
		tr, err := Read(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tr.Records) != 2 {
			t.Fatalf("%s: %d records", name, len(tr.Records))
		}
		for i, r := range tr.Records {
			if r.SessionID != "" || r.Turn != 0 {
				t.Errorf("%s record %d: unexpected session identity %q/%d", name, i, r.SessionID, r.Turn)
			}
		}
	}
}

// TestValidateSessionOrdering: the session consistency rules.
func TestValidateSessionOrdering(t *testing.T) {
	ok := sessionTrace()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid session trace rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"turn without session", func(tr *Trace) { tr.Records[1].Turn = 1 }},
		{"negative turn", func(tr *Trace) { tr.Records[0].Turn = -1 }},
		{"repeated turn", func(tr *Trace) { tr.Records[2].Turn = 0 }},
		{"decreasing turn", func(tr *Trace) { tr.Records[3].Turn = 1; tr.Records[2].Turn = 2 }},
	}
	for _, c := range cases {
		tr := sessionTrace()
		c.mutate(&tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestReplayPropagatesSessions: replay keeps session identity, and looping
// a trace suffixes each pass's session IDs so looped conversations stay
// valid sessions instead of colliding with their earlier copies.
func TestReplayPropagatesSessions(t *testing.T) {
	tr := sessionTrace()
	once, err := tr.Replay(ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range once {
		if r.SessionID != tr.Records[i].SessionID || r.Turn != tr.Records[i].Turn {
			t.Fatalf("replay record %d: session %q/%d, want %q/%d",
				i, r.SessionID, r.Turn, tr.Records[i].SessionID, tr.Records[i].Turn)
		}
	}
	n := len(tr.Records)
	looped, err := tr.Replay(ReplayOptions{N: 3 * n})
	if err != nil {
		t.Fatal(err)
	}
	if got := looped[n].SessionID; got != "c#0~1" {
		t.Fatalf("pass-1 session id %q, want c#0~1", got)
	}
	if got := looped[2*n].SessionID; got != "c#0~2" {
		t.Fatalf("pass-2 session id %q, want c#0~2", got)
	}
	// The looped stream itself must survive capture-side validation.
	if err := FromRequests(looped).Validate(); err != nil {
		t.Fatalf("looped session stream invalid: %v", err)
	}
}

// TestSessionCaptureRoundTrip: generate → serve → capture → write → read →
// replay of the session mix reproduces the exact session identities.
func TestSessionCaptureRoundTrip(t *testing.T) {
	reqs, err := servegen.ChatSessions().Generate(60, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewCapture()
	if _, err := serve.Serve(reqs, chunkedMgr(8*sim.GiB), serve.ServerConfig{MaxBatch: 8, OnComplete: rec.Hook()}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Trace().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := back.Replay(ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, reqs) {
		t.Fatal("session stream did not round-trip through capture and CSV")
	}
}
