package reqtrace

import (
	"fmt"
	"math"
	"time"

	"repro/internal/serve"
)

// Capture collects the requests a serving run completes. Install its Hook
// as serve.ServerConfig.OnComplete (directly, or via ClusterConfig.Server
// for a whole fleet — every replica then feeds the same capture), run the
// workload, and read the result with Trace. The trace is canonicalized by
// arrival order, so it is identical whether the run was a single server or
// an elastic work-stealing cluster whose replicas completed in any
// interleaving.
//
// A Capture belongs to one run: serving runs are single-goroutine
// co-simulations, so the hook needs no locking, but two concurrent runs
// must not share one Capture.
type Capture struct {
	reqs []serve.Request
}

// NewCapture returns an empty capture.
func NewCapture() *Capture { return &Capture{} }

// Hook is the completion callback to install as ServerConfig.OnComplete.
func (c *Capture) Hook() func(serve.Request) {
	return func(r serve.Request) { c.reqs = append(c.reqs, r) }
}

// Count is how many completions have been recorded.
func (c *Capture) Count() int { return len(c.reqs) }

// Trace returns the captured requests as a canonical trace (sorted by
// arrival, completion order discarded).
func (c *Capture) Trace() Trace { return FromRequests(c.reqs) }

// ReplayOptions tunes Trace.Replay.
type ReplayOptions struct {
	// N is the number of requests to produce: 0 replays the whole trace
	// once, a smaller value truncates it, a larger value loops it — each
	// pass shifted by a constant period (the trace span plus one mean
	// interarrival gap, so the seam does not glue the last and first
	// arrivals together).
	N int

	// Scale multiplies the request rate: 2 halves every arrival offset,
	// 0.5 doubles them. 0 (or 1) replays at the recorded rate. Token
	// counts are never scaled.
	Scale float64
}

// Replay turns the trace back into a request stream. With the zero options
// the stream is exactly Requests(): the same tuples servegen generated, so
// serving it reproduces the original report byte for byte.
func (t Trace) Replay(opts ReplayOptions) ([]serve.Request, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if opts.N < 0 {
		return nil, fmt.Errorf("reqtrace: replay of %d requests", opts.N)
	}
	if opts.Scale < 0 || math.IsNaN(opts.Scale) || math.IsInf(opts.Scale, 0) {
		return nil, fmt.Errorf("reqtrace: replay scale %g", opts.Scale)
	}
	n := opts.N
	if n == 0 {
		n = len(t.Records)
	}
	scale := opts.Scale
	if scale == 0 {
		scale = 1
	}
	n0 := len(t.Records)
	span := t.Span()
	// The loop period: span plus one mean gap; degenerate single-point or
	// zero-span traces fall back to a one-second gap.
	gap := time.Second
	if n0 > 1 && span > 0 {
		gap = span / time.Duration(n0-1)
	}
	period := span + gap

	out := make([]serve.Request, n)
	for i := range out {
		r := t.Records[i%n0]
		pass := i / n0
		at := r.Arrival + time.Duration(pass)*period
		if scale != 1 {
			at = time.Duration(float64(at) / scale)
		}
		sid := r.SessionID
		if sid != "" && pass > 0 {
			// Each loop pass replays distinct conversations: suffixing the
			// session id by the pass keeps a looped session from colliding
			// with its earlier copies (same turns, much later arrivals),
			// which would violate turn ordering and fake prefix hits.
			sid = fmt.Sprintf("%s~%d", sid, pass)
		}
		out[i] = serve.Request{
			ID:        i,
			Class:     r.Class,
			SLO:       r.SLO,
			Priority:  r.Priority,
			ArrivalAt: at,
			PromptLen: r.Prompt,
			OutputLen: r.Output,
			SessionID: sid,
			Turn:      r.Turn,
		}
	}
	return out, nil
}
