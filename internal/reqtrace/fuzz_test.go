package reqtrace

import (
	"bytes"
	"os"
	"testing"
)

// FuzzReadTrace throws arbitrary bytes at Read. The contract under fuzzing:
// Read never panics, and whenever it accepts an input the returned trace is
// valid (Read runs Validate before returning — ordering, non-negative
// arrivals, positive token counts) and survives a JSONL re-write/re-read
// with every numeric field intact. Malformed headers, out-of-order
// arrivals and bad token counts must surface as errors, never as panics
// or as invalid traces.
//
// Seeds: the checked-in Azure-styled sample, its CSV rendering, and a few
// minimal hand-written valid and near-valid inputs so mutation starts on
// both sides of every validation boundary.
func FuzzReadTrace(f *testing.F) {
	sample, err := os.ReadFile("testdata/azure_llm_sample.jsonl")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sample)

	tr, err := Read(bytes.NewReader(sample))
	if err != nil {
		f.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := tr.WriteCSV(&csvBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(csvBuf.Bytes())

	f.Add([]byte("{\"format\":\"reqtrace\",\"version\":1}\n{\"arrival_ns\":0,\"prompt_tokens\":1,\"output_tokens\":1}\n"))
	f.Add([]byte("#reqtrace v1\narrival_ns,class,slo,priority,prompt_tokens,output_tokens\n0,chat,interactive,2,120,64\n"))
	f.Add([]byte("{\"format\":\"reqtrace\",\"version\":99}\n"))                                                                                                                        // newer than supported
	f.Add([]byte("#reqtrace v1\nwrong,header\n"))                                                                                                                                      // bad CSV header
	f.Add([]byte("{\"format\":\"reqtrace\",\"version\":1}\n{\"arrival_ns\":5,\"prompt_tokens\":1,\"output_tokens\":1}\n{\"arrival_ns\":3,\"prompt_tokens\":1,\"output_tokens\":1}\n")) // out of order
	f.Add([]byte("plain text"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		// Read validates before returning, so acceptance implies validity.
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid trace: %v", verr)
		}
		// An accepted trace re-writes and re-reads cleanly. String fields
		// may be canonicalized (JSON sanitizes invalid UTF-8), but record
		// count and every numeric field round-trip exactly.
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatalf("re-write of an accepted trace failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read of a re-written trace failed: %v", err)
		}
		if len(back.Records) != len(tr.Records) {
			t.Fatalf("round trip kept %d of %d records", len(back.Records), len(tr.Records))
		}
		for i, r := range tr.Records {
			b := back.Records[i]
			if b.Arrival != r.Arrival || b.Priority != r.Priority ||
				b.Prompt != r.Prompt || b.Output != r.Output {
				t.Fatalf("record %d round-tripped %+v as %+v", i, r, b)
			}
		}
	})
}
