// Command gmlake-serve runs one heterogeneous multi-tenant serving mix
// under continuous batching and prints the per-SLO-class report: TTFT and
// end-to-end latency percentiles, preemptions and KV-cache occupancy for
// every client class.
//
// Usage:
//
//	gmlake-serve -list
//	gmlake-serve -mix chat-heavy -policy paged
//	gmlake-serve -conf "backend:gmlake,serve_mix:chat+batch,burst_cv:6" -policy chunked
//	gmlake-serve -n 500 -seed 42 -capacity-gb 2 -policy all -parallel 3
//	gmlake-serve -replicas 4 -dispatch jsq -aging 2s -policy chunked
//	gmlake-serve -min-replicas 1 -max-replicas 6 -steal -policy chunked
//	gmlake-serve -replicas 2 -replica-caps 2,1 -dispatch least-kv -policy chunked
//	gmlake-serve -mix chat-sessions -replicas 4 -dispatch session-affinity -prefix-reuse -policy chunked
//	gmlake-serve -mix chat-heavy -trace-out captured.jsonl -policy chunked
//	gmlake-serve -trace-in captured.jsonl -trace-scale 2 -policy chunked
//	gmlake-serve -trace-in prod.csv -fit -policy chunked
//	gmlake-serve -replicas 3 -mttf 2s -mttr 400ms -timeout 30s -retries 3 -policy chunked
//	gmlake-serve -replicas 2 -fault-plan "crash@t=12s:r1/restart@t=14s:r1" -timeout 30s -retries 1 -shed -policy chunked
//
// The workload keys (serve_mix, serve_rate, burst_cv, parallel), the
// cluster keys (replicas, dispatch, aging, min_replicas, max_replicas,
// scale_up, scale_down, scale_cooldown, steal, replica_caps), the
// session keys (prefix_reuse, affinity_base) and the
// request-trace keys (trace_in, trace_out, trace_scale, fit) and the
// fault keys (mttf, mttr, fault_plan, timeout, retries, backoff,
// retry_budget, shed) ride in the
// same PYTORCH_CUDA_ALLOC_CONF-style string that selects the pool
// allocator; the corresponding flags are shorthands for the same knobs.
//
// With -trace-in the request stream is replayed from a request trace file
// (internal/reqtrace JSONL or CSV) instead of generated: -trace-scale
// multiplies the replayed request rate, -n (when given explicitly)
// truncates or loops the trace, and -fit calibrates a servegen mix to the
// trace — printing the fitted classes and a per-class fit-error report —
// and serves the fitted mix instead of the replay. With -trace-out the
// completed run is captured back into a trace file (generate → capture →
// replay round-trips byte-identically).
//
// With -replicas > 1 the stream is served by a multi-replica cluster —
// each replica on its own device and pool behind a cluster-level admission
// queue — and the merged report's percentiles come from the union of the
// replicas' raw samples. With -max-replicas > 0 the fleet is elastic: a
// queue-depth autoscaler spawns replicas (up to the ceiling) when the
// queued backlog exceeds -scale-up per active replica, and drains one —
// only after it has fully emptied — when the backlog falls to -scale-down
// per remaining replica, with at least -scale-cooldown of virtual time
// between decisions. -steal enables work-stealing re-dispatch: a replica
// that goes idle takes queued (never running) requests from a backlogged
// peer, so dispatch is no longer decide-once at arrival. -replica-caps
// makes the fleet heterogeneous: "2,1" gives replica 0 twice the device
// memory, twice the batch limit and twice the dispatch weight of replica
// 1, and the load-aware policies (jsq, least-kv) divide each replica's
// observed load by its weight so the big replica absorbs proportionally
// more demand.
//
// With a session mix (e.g. -mix chat-sessions) requests arrive as
// multi-turn conversations whose prompts grow by the prior exchange.
// -prefix-reuse lets a replica skip the prefill of a session prefix whose
// KV is still resident from the previous turn (crashes, recompute
// preemption and deadline drops invalidate residency), and -dispatch
// session-affinity routes a follow-up turn to the replica holding its
// prefix, falling back to -affinity-base (default jsq) when no replica
// does. The report then carries prefix hit/miss counts, reused prefill
// tokens and how many requests the sticky probe routed.
//
// With -mttf/-mttr (or a scripted -fault-plan) the cluster injects replica
// crashes: a crashed replica loses its KV cache and in-flight sequences,
// leaves dispatch, and rejoins empty after its restart. Queued requests it
// held are re-dispatched for free; in-flight ones are retried up to
// -retries times with exponential -backoff (recompute from scratch — TTFT
// survives only if the first token had already streamed), bounded per
// class by -retry-budget. -timeout sets a per-request deadline (goodput
// counts only in-deadline completions) and -shed rejects requests at
// admission once the deadline is provably unreachable. The fault seed is
// the workload seed, so one -seed pins the whole run, faults included.
//
// Runs are deterministic: one seed, one request stream, whatever the
// policy — scaling and stealing decisions happen at event boundaries of
// the virtual-time co-simulation — and because each policy (and each
// replica) runs on its own device and pool, -parallel sweeps policies
// concurrently without changing any report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/conf"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/model"
	"repro/internal/reqtrace"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/servegen"
	"repro/internal/sim"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list mix names and exit")
		confStr  = flag.String("conf", "", "allocator+workload configuration string, e.g. backend:gmlake,serve_mix:chat+batch")
		mixName  = flag.String("mix", "", "mix name (overrides serve_mix in -conf; default mixed-bursty)")
		rate     = flag.Float64("rate", 0, "aggregate request rate per second (0 = mix default)")
		burstCV  = flag.Float64("burst-cv", 0, "interarrival CV for bursty classes (0 = mix default)")
		n        = flag.Int("n", 200, "number of requests")
		seed     = flag.Uint64("seed", 7, "workload generator seed")
		policy   = flag.String("policy", "all", "KV policy: contiguous, paged, chunked or all")
		batch    = flag.Int("batch", 24, "max concurrent decoding sequences per replica")
		capacity = flag.Float64("capacity-gb", 1.5, "device memory in GiB (per replica, scaled by its capacity weight)")
		par      = flag.Int("parallel", 0, "policy-run workers (0 = conf's parallel key or GOMAXPROCS)")
		replicas = flag.Int("replicas", 0, "replica servers behind the cluster queue (0 = conf's replicas key or 1)")
		dispatch = flag.String("dispatch", "", "cluster dispatch policy: round-robin, jsq, least-kv, session-affinity (default conf's dispatch key or round-robin)")
		aging    = flag.Duration("aging", 0, "priority-aging rate, e.g. 2s (0 = conf's aging key or off)")
		prefixRe = flag.Bool("prefix-reuse", false, "session KV prefix reuse: a follow-up turn skips the prefill still resident on its replica")
		affBase  = flag.String("affinity-base", "", "fallback dispatch policy for session-affinity (default conf's affinity_base key or jsq)")
		exactSmp = flag.Int("exact-samples", 0, "latency-digest exact-retention threshold (0 = conf's exact_samples key or the serve default; negative = sketch from the first sample)")
		minRep   = flag.Int("min-replicas", 0, "autoscaler floor (0 = conf's min_replicas key)")
		maxRep   = flag.Int("max-replicas", 0, "autoscaler ceiling; > 0 enables queue-depth autoscaling (0 = conf's max_replicas key)")
		scaleUp  = flag.Int("scale-up", 0, "queued backlog per active replica that spawns one more (0 = conf's scale_up key or 4)")
		scaleDn  = flag.Int("scale-down", 0, "backlog per remaining replica below which one drains (0 = conf's scale_down key or 1)")
		cooldown = flag.Duration("scale-cooldown", 0, "minimum virtual time between scale decisions (0 = conf's scale_cooldown key or 250ms)")
		steal    = flag.Bool("steal", false, "work-stealing re-dispatch of queued requests to starving replicas")
		capsFlag = flag.String("replica-caps", "", "comma-separated per-replica capacity weights, e.g. 2,1 (overrides conf's replica_caps)")
		traceIn  = flag.String("trace-in", "", "replay this request-trace file (JSONL or CSV) instead of generating a mix")
		traceOut = flag.String("trace-out", "", "capture the completed run into this trace file")
		traceSc  = flag.Float64("trace-scale", 0, "rate multiplier for the replayed trace (0 = recorded rate; needs -trace-in)")
		fit      = flag.Bool("fit", false, "calibrate a mix to the trace and serve it, with a fit-error report (needs -trace-in)")
		mttf     = flag.Duration("mttf", 0, "mean time to failure per replica, exponential (0 = conf's mttf key or no faults; needs -mttr)")
		mttr     = flag.Duration("mttr", 0, "mean time to restart after a crash (needs -mttf)")
		faultPl  = flag.String("fault-plan", "", "scripted crash/restart schedule, e.g. crash@t=12s:r1/restart@t=14s:r1 (excludes -mttf)")
		timeoutF = flag.Duration("timeout", 0, "per-request deadline from arrival; late completions miss, not goodput (0 = conf's timeout key or none)")
		retries  = flag.Int("retries", 0, "re-dispatch attempts per crashed in-flight request (0 = conf's retries key or none; needs a timeout)")
		backoffF = flag.Float64("backoff", 0, "exponential retry-backoff multiplier >= 1 (0 = conf's backoff key or 2)")
		rBudget  = flag.Int("retry-budget", 0, "total retries one client class may consume (0 = conf's retry_budget key or unlimited)")
		shedF    = flag.Bool("shed", false, "deadline-aware admission shedding of provably-late requests (needs a timeout)")
	)
	flag.Parse()
	nVisited := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "n" {
			nVisited = true
		}
	})

	if *par < 0 {
		fatal(fmt.Errorf("-parallel must be >= 0, got %d", *par))
	}
	if *replicas < 0 || *minRep < 0 || *maxRep < 0 || *scaleUp < 0 || *scaleDn < 0 {
		fatal(fmt.Errorf("replica and scaling counts must be >= 0"))
	}
	if *aging < 0 || *cooldown < 0 || *mttf < 0 || *mttr < 0 || *timeoutF < 0 {
		fatal(fmt.Errorf("durations must be >= 0"))
	}
	if *retries < 0 || *rBudget < 0 {
		fatal(fmt.Errorf("-retries and -retry-budget must be >= 0"))
	}

	if *list {
		fmt.Println(strings.Join(servegen.MixNames(), "\n"))
		return
	}

	cfg, err := conf.Parse(*confStr)
	if err != nil {
		fatal(err)
	}
	if *mixName != "" {
		cfg.ServeMix = *mixName
	}
	if *rate > 0 {
		cfg.ServeRate = *rate
	}
	if *burstCV > 0 {
		cfg.BurstCV = *burstCV
	}
	if *replicas > 0 {
		cfg.Replicas = *replicas
	}
	if *dispatch != "" {
		p, err := serve.ParseDispatch(*dispatch)
		if err != nil {
			fatal(err)
		}
		cfg.Dispatch = p
	}
	if *aging > 0 {
		cfg.Aging = *aging
	}
	if *prefixRe {
		cfg.PrefixReuse = true
	}
	if *affBase != "" {
		p, err := serve.ParseDispatch(*affBase)
		if err != nil {
			fatal(err)
		}
		if p == serve.DispatchSessionAffinity {
			fatal(fmt.Errorf("-affinity-base cannot itself be session-affinity"))
		}
		cfg.AffinityBase = p
	}
	if *exactSmp != 0 {
		cfg.ExactSamples = *exactSmp
	}
	if *minRep > 0 {
		cfg.MinReplicas = *minRep
	}
	if *maxRep > 0 {
		cfg.MaxReplicas = *maxRep
	}
	if *scaleUp > 0 {
		cfg.ScaleUpDepth = *scaleUp
	}
	if *scaleDn > 0 {
		cfg.ScaleDownDepth = *scaleDn
	}
	if *cooldown > 0 {
		cfg.ScaleCooldown = *cooldown
	}
	if *steal {
		cfg.Steal = true
	}
	if *capsFlag != "" {
		caps, err := parseCapsFlag(*capsFlag)
		if err != nil {
			fatal(err)
		}
		cfg.ReplicaCaps = caps
	}
	if *traceIn != "" {
		cfg.TraceIn = *traceIn
	}
	if *traceOut != "" {
		cfg.TraceOut = *traceOut
	}
	if *traceSc > 0 {
		cfg.TraceScale = *traceSc
	}
	if *fit {
		cfg.Fit = true
	}
	if *mttf > 0 {
		cfg.MTTF = *mttf
	}
	if *mttr > 0 {
		cfg.MTTR = *mttr
	}
	if *faultPl != "" {
		plan, err := serve.ParseFaultPlan(*faultPl)
		if err != nil {
			fatal(err)
		}
		cfg.FaultPlan = plan
	}
	if *timeoutF > 0 {
		cfg.Timeout = *timeoutF
	}
	if *retries > 0 {
		cfg.Retries = *retries
	}
	if *backoffF > 0 {
		cfg.Backoff = *backoffF
	}
	if *rBudget > 0 {
		cfg.RetryBudget = *rBudget
	}
	if *shedF {
		cfg.Shed = true
	}
	// Flags bypass conf.Parse, so re-assert its cross-key contracts on the
	// merged configuration.
	if (cfg.MTTF > 0) != (cfg.MTTR > 0) {
		fatal(fmt.Errorf("-mttf and -mttr must be set together"))
	}
	if len(cfg.FaultPlan) > 0 && cfg.MTTF > 0 {
		fatal(fmt.Errorf("-fault-plan and -mttf/-mttr are mutually exclusive"))
	}
	if cfg.Retries > 0 && cfg.Timeout == 0 {
		fatal(fmt.Errorf("-retries needs -timeout (unbounded retries need a deadline)"))
	}
	if cfg.Backoff > 0 && cfg.Retries == 0 {
		fatal(fmt.Errorf("-backoff needs -retries"))
	}
	if cfg.RetryBudget > 0 && cfg.Retries == 0 {
		fatal(fmt.Errorf("-retry-budget needs -retries"))
	}
	if cfg.Shed && cfg.Timeout == 0 {
		fatal(fmt.Errorf("-shed needs -timeout"))
	}
	if cfg.TraceIn == "" && (cfg.Fit || cfg.TraceScale > 0) {
		fatal(fmt.Errorf("-fit and -trace-scale need -trace-in"))
	}
	if cfg.AffinityBase != "" && cfg.Dispatch != serve.DispatchSessionAffinity {
		fatal(fmt.Errorf("-affinity-base needs -dispatch session-affinity"))
	}

	// The request stream: replayed (or fitted) from a trace file when
	// trace_in is configured, generated from the mix otherwise.
	var (
		reqs   []serve.Request
		mix    servegen.Mix
		source string
	)
	if cfg.TraceIn != "" {
		tr, rerr := reqtrace.ReadFile(cfg.TraceIn)
		if rerr != nil {
			fatal(rerr)
		}
		if cfg.Fit {
			fitted, ferr := reqtrace.Fit(tr)
			if ferr != nil {
				fatal(ferr)
			}
			mix = fitted
			nReqs := len(tr.Records)
			if nVisited {
				nReqs = *n
			}
			reqs, err = mix.Generate(nReqs, *seed)
			if err != nil {
				fatal(err)
			}
			source = fmt.Sprintf("mix fitted to %s", cfg.TraceIn)
			printFit(tr, fitted, reqs)
		} else {
			opts := reqtrace.ReplayOptions{Scale: cfg.TraceScale}
			if nVisited {
				opts.N = *n
			}
			reqs, err = tr.Replay(opts)
			if err != nil {
				fatal(err)
			}
			stats := tr.Stats()
			mix = servegen.Mix{Name: "replay:" + cfg.TraceIn, Rate: stats.RatePerSec,
				Classes: make([]servegen.ClientClass, len(stats.Classes))}
			if cfg.TraceScale > 0 {
				mix.Rate *= cfg.TraceScale
			}
			source = fmt.Sprintf("trace replay of %s", cfg.TraceIn)
			if cfg.TraceScale > 0 {
				source += fmt.Sprintf(" at %gx rate", cfg.TraceScale)
			}
		}
	} else {
		mix, err = cfg.ServeWorkload()
		if err != nil {
			fatal(err)
		}
		reqs, err = mix.Generate(*n, *seed)
		if err != nil {
			fatal(err)
		}
		source = "generated"
	}

	modelCfg := model.OPT1_3B
	capBytes := int64(*capacity * float64(sim.GiB))

	// The cluster configuration: replica i's capacity weight scales its
	// dispatch share, its batch limit and its device memory together.
	clusterCfg := cfg.Cluster(serve.ServerConfig{MaxBatch: *batch, Aging: cfg.Aging, ExactSamples: cfg.ExactSamples})
	// One seed pins the workload and the fault process together.
	clusterCfg.Faults.Seed = *seed
	for i := range clusterCfg.Overrides {
		w := clusterCfg.Overrides[i].Capacity
		if w > 0 && w != 1 {
			b := int(w*float64(*batch) + 0.5)
			if b < 1 {
				b = 1 // a 0 override would mean "inherit the full batch"
			}
			clusterCfg.Overrides[i].MaxBatch = b
		}
	}
	capacityOf := func(i int) int64 {
		if i < len(clusterCfg.Overrides) && clusterCfg.Overrides[i].Capacity > 0 {
			return int64(clusterCfg.Overrides[i].Capacity * float64(capBytes))
		}
		return capBytes
	}
	fleetMax := clusterCfg.Replicas
	if clusterCfg.MaxReplicas > 0 {
		fleetMax = clusterCfg.MaxReplicas
	}
	// Reject configuration mistakes (a fault plan targeting a replica the
	// fleet can never have, bad recovery knobs, ...) before any policy runs,
	// so they read as config errors rather than per-policy serving failures.
	if err := clusterCfg.Validate(); err != nil {
		fatal(err)
	}

	newAlloc := func(i int) memalloc.Allocator {
		driver := cuda.NewDriver(gpu.NewDevice("serve", capacityOf(i)), sim.NewClock(), sim.DefaultCostModel())
		alloc, err := cfg.Build(driver)
		if err != nil {
			fatal(err)
		}
		return alloc
	}

	fmt.Printf("mix %s (%s): %d requests from %d classes, %.1f req/s aggregate, seed %d\n",
		mix.Name, source, len(reqs), len(mix.Classes), mix.Rate, *seed)
	fmt.Printf("pool %s, %.1f GiB device, max batch %d\n", cfg.Backend, *capacity, *batch)
	agingStr := "off"
	if cfg.Aging > 0 {
		agingStr = cfg.Aging.String()
	}
	dispatchPolicy, err := serve.ParseDispatch(string(cfg.Dispatch))
	if err != nil {
		fatal(err)
	}
	fleetStr := fmt.Sprintf("%d replica(s)", clusterCfg.Replicas)
	if clusterCfg.MaxReplicas > 0 {
		min := clusterCfg.MinReplicas
		if min == 0 {
			min = 1
		}
		fleetStr = fmt.Sprintf("elastic %d..%d replicas", min, clusterCfg.MaxReplicas)
	}
	stealStr := ""
	if clusterCfg.Steal {
		stealStr = ", work-stealing"
	}
	capsStr := ""
	if len(cfg.ReplicaCaps) > 0 {
		capsStr = fmt.Sprintf(", caps %v", cfg.ReplicaCaps)
	}
	dispatchStr := string(dispatchPolicy)
	if dispatchPolicy == serve.DispatchSessionAffinity {
		base := clusterCfg.AffinityBase
		if base == "" {
			base = serve.DispatchJSQ
		}
		dispatchStr += fmt.Sprintf(" (base %s)", base)
	}
	reuseStr := ""
	if cfg.PrefixReuse {
		reuseStr = ", prefix reuse"
	}
	fmt.Printf("cluster: %s, dispatch %s, aging %s%s%s%s\n", fleetStr, dispatchStr, agingStr, stealStr, capsStr, reuseStr)
	if clusterCfg.Faults.Enabled() || cfg.Timeout > 0 {
		faultStr := "none"
		if cfg.MTTF > 0 {
			faultStr = fmt.Sprintf("mttf %v, mttr %v", cfg.MTTF, cfg.MTTR)
		} else if len(cfg.FaultPlan) > 0 {
			faultStr = fmt.Sprintf("scripted plan, %d events", len(cfg.FaultPlan))
		}
		deadlineStr := "none"
		if cfg.Timeout > 0 {
			deadlineStr = cfg.Timeout.String()
			if cfg.Shed {
				deadlineStr += " with shedding"
			}
		}
		retryStr := "none"
		if cfg.Retries > 0 {
			retryStr = fmt.Sprintf("%d with backoff", cfg.Retries)
			if cfg.RetryBudget > 0 {
				retryStr += fmt.Sprintf(", budget %d/class", cfg.RetryBudget)
			}
		}
		fmt.Printf("faults: %s; deadline %s; retries %s\n", faultStr, deadlineStr, retryStr)
	}
	fmt.Println()

	policies := []string{"contiguous", "paged", "chunked"}
	if *policy != "all" {
		policies = []string{*policy}
	}
	for _, p := range policies {
		switch p {
		case "contiguous", "paged", "chunked":
		default:
			fatal(fmt.Errorf("unknown policy %q (contiguous, paged, chunked, all)", p))
		}
	}

	// buildMgr assembles one replica's manager over its own pool; the
	// returned closer releases a paged slab after the run.
	buildMgr := func(policy string, replica int, alloc memalloc.Allocator) (serve.CacheManager, func(), error) {
		switch policy {
		case "contiguous":
			return serve.NewContiguousKV(alloc, modelCfg, 1024), func() {}, nil
		case "paged":
			// Size the slab to ~85% of the device so the block pool, not
			// the pool allocator, is the binding constraint.
			perToken := serve.KVBytesPerToken(modelCfg)
			blocks := int(capacityOf(replica) * 85 / 100 / (16 * perToken))
			m, err := serve.NewPagedKV(alloc, modelCfg, 16, blocks)
			if err != nil {
				return nil, nil, err
			}
			return m, m.Close, nil
		default: // chunked
			return serve.NewChunkedKV(alloc, modelCfg, 64), func() {}, nil
		}
	}

	// Policy runs are independent (each builds its own devices, pools and
	// managers over the identical request stream), so they sweep on the
	// worker pool; reports print in policy order regardless of which
	// finished first. -parallel overrides the conf string's parallel key.
	// Every policy serves through the cluster — with one replica the
	// cluster loop is byte-identical to the single-server Serve loop.
	// Replica managers are built lazily: with autoscaling on, replicas
	// past the initial fleet exist only if the scaler spawned them.
	workers := cfg.Parallelism
	if *par > 0 {
		workers = *par
	}
	type outcome struct {
		rep   serve.ClusterReport
		stats []memalloc.Stats
		cap   *reqtrace.Capture
		err   error
	}
	results, err := runner.Collect(workers, len(policies), func(i int) (out outcome) {
		allocs := make([]memalloc.Allocator, 0, fleetMax)
		closers := make([]func(), 0, fleetMax)
		defer func() {
			for _, c := range closers {
				c()
			}
			// A manager build error aborts the co-simulation immediately
			// (there is no point serving thousands of requests on a
			// half-built fleet); it surfaces as this policy's outcome.
			if r := recover(); r != nil {
				if err, ok := r.(replicaBuildError); ok {
					out = outcome{err: err.err}
					return
				}
				panic(r)
			}
		}()
		// Each policy run gets its own capture (policies sweep in
		// parallel); the trace is written once from the first successful
		// run — the streams are identical, so the captures are too.
		runCfg := clusterCfg
		var capRec *reqtrace.Capture
		if cfg.TraceOut != "" {
			capRec = reqtrace.NewCapture()
			runCfg.Server.OnComplete = capRec.Hook()
		}
		rep, err := serve.ServeCluster(reqs, func(r int) serve.CacheManager {
			alloc := newAlloc(r)
			mgr, closer, err := buildMgr(policies[i], r, alloc)
			if err != nil {
				panic(replicaBuildError{err: fmt.Errorf("replica %d: %w", r, err)})
			}
			allocs = append(allocs, alloc)
			closers = append(closers, closer)
			return mgr
		}, runCfg)
		stats := make([]memalloc.Stats, len(allocs))
		for r, a := range allocs {
			stats[r] = a.Stats()
		}
		return outcome{rep: rep, stats: stats, cap: capRec, err: err}
	})
	if err != nil {
		fatal(err)
	}
	for i, res := range results {
		if res.err != nil {
			fmt.Printf("== %s: OOM: %v\n\n", policies[i], res.err)
			continue
		}
		printReport(policies[i], res.rep, res.stats)
	}
	if cfg.TraceOut != "" {
		for i, res := range results {
			if res.err == nil && res.cap != nil {
				if err := res.cap.Trace().WriteFile(cfg.TraceOut); err != nil {
					fatal(err)
				}
				fmt.Printf("captured %d completed requests from the %s run into %s\n",
					res.cap.Count(), policies[i], cfg.TraceOut)
				break
			}
		}
	}
}

// printFit summarizes a calibration: the fitted classes and the fit-error
// report of the fitted mix against the source trace, computed on the exact
// stream the run serves.
func printFit(tr reqtrace.Trace, fitted servegen.Mix, served []serve.Request) {
	fmt.Printf("calibration: fitted %d classes at %.2f req/s aggregate\n", len(fitted.Classes), fitted.Rate)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "  class\tSLO\tshare\tarrival\tprompt\toutput")
	for _, c := range fitted.Classes {
		fmt.Fprintf(w, "  %s\t%s\t%.0f%%\t%s\t%s\t%s\n",
			c.Name, c.SLO, 100*c.Share, c.Arrival.Describe(),
			c.Prompt.Describe(), c.Output.Describe())
	}
	w.Flush()
	rep := reqtrace.CompareTraces(tr, reqtrace.FromRequests(served))
	fmt.Printf("fit error vs trace (aggregate): rate %.1f%%, prompt mean %.1f%%, output mean %.1f%%\n",
		100*rep.RateErr, 100*rep.PromptMeanErr, 100*rep.OutputMeanErr)
	w = tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "  class\trate err\tprompt err\toutput err\tKS prompt\tKS output")
	for _, ce := range rep.Classes {
		fmt.Fprintf(w, "  %s\t%.1f%%\t%.1f%%\t%.1f%%\t%.2f\t%.2f\n",
			ce.Class, 100*ce.RateErr, 100*ce.PromptMeanErr, 100*ce.OutputMeanErr,
			ce.PromptKS, ce.OutputKS)
	}
	w.Flush()
	fmt.Println()
}

// replicaBuildError carries a cache-manager build failure out of the
// ServeCluster factory callback via panic, aborting the run up front.
type replicaBuildError struct{ err error }

// parseCapsFlag parses the -replica-caps comma list ("2,1,1.5").
func parseCapsFlag(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	caps := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || !(f > 0) {
			return nil, fmt.Errorf("-replica-caps needs positive numbers, got %q", p)
		}
		caps = append(caps, f)
	}
	return caps, nil
}

func printReport(policy string, rep serve.ClusterReport, stats []memalloc.Stats) {
	var util float64
	for _, st := range stats {
		util += st.Utilization()
	}
	util /= float64(len(stats))
	fmt.Printf("== %s: served %d in %s virtual, mean batch %.1f, %d preemptions, mean pool util %.1f%%\n",
		policy, rep.Served, rep.Duration.Round(time.Millisecond), rep.MeanBatch,
		rep.Preemptions, 100*util)
	if rep.Crashes > 0 || rep.DeadlineMisses > 0 || rep.Shed > 0 {
		fmt.Printf("   faults: %d crashes, %d restarts, %d retries, %d lost; goodput %d, %d deadline misses, %d shed, availability %.1f%%\n",
			rep.Crashes, rep.Restarts, rep.Retries, rep.Lost,
			rep.Goodput, rep.DeadlineMisses, rep.Shed, 100*rep.Availability)
	}
	if rep.PrefixHits > 0 || rep.PrefixMisses > 0 || rep.AffinityRouted > 0 {
		fmt.Printf("   sessions: %d prefix hits, %d misses, %d prefill tokens reused, %d affinity-routed\n",
			rep.PrefixHits, rep.PrefixMisses, rep.ReusedTokens, rep.AffinityRouted)
	}
	if rep.Spawns > 0 || rep.Drains > 0 {
		fmt.Printf("   elastic fleet: peak %d replicas, %d spawns, %d drains, %.1f replica-seconds\n",
			rep.PeakReplicas, rep.Spawns, rep.Drains, rep.ReplicaSeconds.Seconds())
	}
	if len(rep.Replicas) > 1 {
		for i, r := range rep.Replicas {
			stolen := ""
			if rep.Stolen[i] > 0 {
				stolen = fmt.Sprintf(", %d stolen", rep.Stolen[i])
			}
			util := "-"
			if i < len(stats) {
				util = fmt.Sprintf("%.1f%%", 100*stats[i].Utilization())
			}
			fmt.Printf("   replica %d: %d assigned%s, %d served in %s, %d preemptions, pool util %s\n",
				i, rep.Assigned[i], stolen, r.Served, r.Duration.Round(time.Millisecond),
				r.Preemptions, util)
		}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "class\tSLO\tserved\tTTFT p50\tp95\tp99\te2e p50\tp99\tpreempt\tKV share")
	row := func(class, slo string, served int, ttft, e2e serve.LatencySummary, preempt int64, share float64) {
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\t%s\t%s\t%s\t%d\t%.1f%%\n",
			class, slo, served, msRound(ttft.P50), msRound(ttft.P95), msRound(ttft.P99),
			msRound(e2e.P50), msRound(e2e.P99), preempt, 100*share)
	}
	for _, c := range rep.Classes {
		row(c.Class, c.SLO, c.Served, c.TTFT, c.E2E, c.Preemptions, c.KVShare)
	}
	row("ALL", "-", rep.Served, rep.TTFT, rep.E2E, rep.Preemptions, 1)
	w.Flush()
	fmt.Println()
}

func msRound(d time.Duration) string {
	return fmt.Sprintf("%dms", d.Milliseconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmlake-serve:", err)
	os.Exit(1)
}
