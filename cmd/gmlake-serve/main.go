// Command gmlake-serve runs one heterogeneous multi-tenant serving mix
// under continuous batching and prints the per-SLO-class report: TTFT and
// end-to-end latency percentiles, preemptions and KV-cache occupancy for
// every client class.
//
// Usage:
//
//	gmlake-serve -list
//	gmlake-serve -mix chat-heavy -policy paged
//	gmlake-serve -conf "backend:gmlake,serve_mix:chat+batch,burst_cv:6" -policy chunked
//	gmlake-serve -n 500 -seed 42 -capacity-gb 2 -policy all -parallel 3
//
// The workload keys (serve_mix, serve_rate, burst_cv, parallel) ride in the
// same PYTORCH_CUDA_ALLOC_CONF-style string that selects the pool
// allocator; the -mix/-rate/-burst-cv/-parallel flags are shorthands for
// the same knobs. Runs are deterministic: one seed, one request stream,
// whatever the policy — and because each policy runs on its own device and
// pool, -parallel sweeps them concurrently without changing any report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/conf"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/servegen"
	"repro/internal/sim"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list mix names and exit")
		confStr  = flag.String("conf", "", "allocator+workload configuration string, e.g. backend:gmlake,serve_mix:chat+batch")
		mixName  = flag.String("mix", "", "mix name (overrides serve_mix in -conf; default mixed-bursty)")
		rate     = flag.Float64("rate", 0, "aggregate request rate per second (0 = mix default)")
		burstCV  = flag.Float64("burst-cv", 0, "interarrival CV for bursty classes (0 = mix default)")
		n        = flag.Int("n", 200, "number of requests")
		seed     = flag.Uint64("seed", 7, "workload generator seed")
		policy   = flag.String("policy", "all", "KV policy: contiguous, paged, chunked or all")
		batch    = flag.Int("batch", 24, "max concurrent decoding sequences")
		capacity = flag.Float64("capacity-gb", 1.5, "device memory in GiB")
		par      = flag.Int("parallel", 0, "policy-run workers (0 = conf's parallel key or GOMAXPROCS)")
	)
	flag.Parse()

	if *par < 0 {
		fatal(fmt.Errorf("-parallel must be >= 0, got %d", *par))
	}

	if *list {
		fmt.Println(strings.Join(servegen.MixNames(), "\n"))
		return
	}

	cfg, err := conf.Parse(*confStr)
	if err != nil {
		fatal(err)
	}
	if *mixName != "" {
		cfg.ServeMix = *mixName
	}
	if *rate > 0 {
		cfg.ServeRate = *rate
	}
	if *burstCV > 0 {
		cfg.BurstCV = *burstCV
	}
	mix, err := cfg.ServeWorkload()
	if err != nil {
		fatal(err)
	}
	reqs, err := mix.Generate(*n, *seed)
	if err != nil {
		fatal(err)
	}

	modelCfg := model.OPT1_3B
	capBytes := int64(*capacity * float64(sim.GiB))
	newAlloc := func() memalloc.Allocator {
		driver := cuda.NewDriver(gpu.NewDevice("serve", capBytes), sim.NewClock(), sim.DefaultCostModel())
		alloc, err := cfg.Build(driver)
		if err != nil {
			fatal(err)
		}
		return alloc
	}

	fmt.Printf("mix %s: %d requests from %d classes, %.1f req/s aggregate, seed %d\n",
		mix.Name, len(reqs), len(mix.Classes), mix.Rate, *seed)
	fmt.Printf("pool %s, %.1f GiB device, max batch %d\n\n", cfg.Backend, *capacity, *batch)

	policies := []string{"contiguous", "paged", "chunked"}
	if *policy != "all" {
		policies = []string{*policy}
	}
	for _, p := range policies {
		switch p {
		case "contiguous", "paged", "chunked":
		default:
			fatal(fmt.Errorf("unknown policy %q (contiguous, paged, chunked, all)", p))
		}
	}
	srvCfg := serve.ServerConfig{MaxBatch: *batch}

	// Policy runs are independent (each builds its own device, pool and
	// manager over the identical request stream), so they sweep on the
	// worker pool; reports print in policy order regardless of which
	// finished first. -parallel overrides the conf string's parallel key.
	workers := cfg.Parallelism
	if *par > 0 {
		workers = *par
	}
	type outcome struct {
		rep   serve.Report
		stats memalloc.Stats
		err   error
	}
	results, err := runner.Collect(workers, len(policies), func(i int) outcome {
		alloc := newAlloc()
		var mgr serve.CacheManager
		switch policies[i] {
		case "contiguous":
			mgr = serve.NewContiguousKV(alloc, modelCfg, 1024)
		case "paged":
			// Size the slab to ~85% of the device so the block pool, not
			// the pool allocator, is the binding constraint.
			perToken := serve.KVBytesPerToken(modelCfg)
			blocks := int(capBytes * 85 / 100 / (16 * perToken))
			m, err := serve.NewPagedKV(alloc, modelCfg, 16, blocks)
			if err != nil {
				return outcome{err: err}
			}
			defer m.Close()
			mgr = m
		case "chunked":
			mgr = serve.NewChunkedKV(alloc, modelCfg, 64)
		}
		rep, err := serve.Serve(reqs, mgr, srvCfg)
		return outcome{rep: rep, stats: alloc.Stats(), err: err}
	})
	if err != nil {
		fatal(err)
	}
	for i, res := range results {
		if res.err != nil {
			fmt.Printf("== %s: OOM: %v\n\n", policies[i], res.err)
			continue
		}
		printReport(policies[i], res.rep, res.stats)
	}
}

func printReport(policy string, rep serve.Report, st memalloc.Stats) {
	fmt.Printf("== %s: served %d in %s virtual, mean batch %.1f, %d preemptions, pool util %.1f%%\n",
		policy, rep.Served, rep.Duration.Round(time.Millisecond), rep.MeanBatch,
		rep.Preemptions, 100*st.Utilization())
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "class\tSLO\tserved\tTTFT p50\tp95\tp99\te2e p50\tp99\tpreempt\tKV share")
	row := func(class, slo string, served int, ttft, e2e serve.LatencySummary, preempt int64, share float64) {
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\t%s\t%s\t%s\t%d\t%.1f%%\n",
			class, slo, served, msRound(ttft.P50), msRound(ttft.P95), msRound(ttft.P99),
			msRound(e2e.P50), msRound(e2e.P99), preempt, 100*share)
	}
	for _, c := range rep.Classes {
		row(c.Class, c.SLO, c.Served, c.TTFT, c.E2E, c.Preemptions, c.KVShare)
	}
	row("ALL", "-", rep.Served, rep.TTFT, rep.E2E, rep.Preemptions, 1)
	w.Flush()
	fmt.Println()
}

func msRound(d time.Duration) string {
	return fmt.Sprintf("%dms", d.Milliseconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmlake-serve:", err)
	os.Exit(1)
}
