// Command gmlake-serve runs one heterogeneous multi-tenant serving mix
// under continuous batching and prints the per-SLO-class report: TTFT and
// end-to-end latency percentiles, preemptions and KV-cache occupancy for
// every client class.
//
// Usage:
//
//	gmlake-serve -list
//	gmlake-serve -mix chat-heavy -policy paged
//	gmlake-serve -conf "backend:gmlake,serve_mix:chat+batch,burst_cv:6" -policy chunked
//	gmlake-serve -n 500 -seed 42 -capacity-gb 2 -policy all -parallel 3
//	gmlake-serve -replicas 4 -dispatch jsq -aging 2s -policy chunked
//
// The workload keys (serve_mix, serve_rate, burst_cv, parallel) and the
// cluster keys (replicas, dispatch, aging) ride in the same
// PYTORCH_CUDA_ALLOC_CONF-style string that selects the pool allocator; the
// -mix/-rate/-burst-cv/-parallel/-replicas/-dispatch/-aging flags are
// shorthands for the same knobs. With -replicas > 1 the stream is served by
// a multi-replica cluster — each replica on its own device and pool behind
// a cluster-level admission queue — and the merged report's percentiles
// come from the union of the replicas' raw samples. Runs are deterministic:
// one seed, one request stream, whatever the policy — and because each
// policy (and each replica) runs on its own device and pool, -parallel
// sweeps policies concurrently without changing any report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/conf"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/servegen"
	"repro/internal/sim"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list mix names and exit")
		confStr  = flag.String("conf", "", "allocator+workload configuration string, e.g. backend:gmlake,serve_mix:chat+batch")
		mixName  = flag.String("mix", "", "mix name (overrides serve_mix in -conf; default mixed-bursty)")
		rate     = flag.Float64("rate", 0, "aggregate request rate per second (0 = mix default)")
		burstCV  = flag.Float64("burst-cv", 0, "interarrival CV for bursty classes (0 = mix default)")
		n        = flag.Int("n", 200, "number of requests")
		seed     = flag.Uint64("seed", 7, "workload generator seed")
		policy   = flag.String("policy", "all", "KV policy: contiguous, paged, chunked or all")
		batch    = flag.Int("batch", 24, "max concurrent decoding sequences per replica")
		capacity = flag.Float64("capacity-gb", 1.5, "device memory in GiB (per replica)")
		par      = flag.Int("parallel", 0, "policy-run workers (0 = conf's parallel key or GOMAXPROCS)")
		replicas = flag.Int("replicas", 0, "replica servers behind the cluster queue (0 = conf's replicas key or 1)")
		dispatch = flag.String("dispatch", "", "cluster dispatch policy: round-robin, jsq, least-kv (default conf's dispatch key or round-robin)")
		aging    = flag.Duration("aging", 0, "priority-aging rate, e.g. 2s (0 = conf's aging key or off)")
	)
	flag.Parse()

	if *par < 0 {
		fatal(fmt.Errorf("-parallel must be >= 0, got %d", *par))
	}
	if *replicas < 0 {
		fatal(fmt.Errorf("-replicas must be >= 0, got %d", *replicas))
	}
	if *aging < 0 {
		fatal(fmt.Errorf("-aging must be >= 0, got %v", *aging))
	}

	if *list {
		fmt.Println(strings.Join(servegen.MixNames(), "\n"))
		return
	}

	cfg, err := conf.Parse(*confStr)
	if err != nil {
		fatal(err)
	}
	if *mixName != "" {
		cfg.ServeMix = *mixName
	}
	if *rate > 0 {
		cfg.ServeRate = *rate
	}
	if *burstCV > 0 {
		cfg.BurstCV = *burstCV
	}
	if *replicas > 0 {
		cfg.Replicas = *replicas
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if *dispatch != "" {
		p, err := serve.ParseDispatch(*dispatch)
		if err != nil {
			fatal(err)
		}
		cfg.Dispatch = p
	}
	if *aging > 0 {
		cfg.Aging = *aging
	}
	mix, err := cfg.ServeWorkload()
	if err != nil {
		fatal(err)
	}
	reqs, err := mix.Generate(*n, *seed)
	if err != nil {
		fatal(err)
	}

	modelCfg := model.OPT1_3B
	capBytes := int64(*capacity * float64(sim.GiB))
	newAlloc := func() memalloc.Allocator {
		driver := cuda.NewDriver(gpu.NewDevice("serve", capBytes), sim.NewClock(), sim.DefaultCostModel())
		alloc, err := cfg.Build(driver)
		if err != nil {
			fatal(err)
		}
		return alloc
	}

	fmt.Printf("mix %s: %d requests from %d classes, %.1f req/s aggregate, seed %d\n",
		mix.Name, len(reqs), len(mix.Classes), mix.Rate, *seed)
	fmt.Printf("pool %s, %.1f GiB device, max batch %d\n", cfg.Backend, *capacity, *batch)
	agingStr := "off"
	if cfg.Aging > 0 {
		agingStr = cfg.Aging.String()
	}
	dispatchPolicy, err := serve.ParseDispatch(string(cfg.Dispatch))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cluster: %d replica(s), dispatch %s, aging %s\n\n", cfg.Replicas, dispatchPolicy, agingStr)

	policies := []string{"contiguous", "paged", "chunked"}
	if *policy != "all" {
		policies = []string{*policy}
	}
	for _, p := range policies {
		switch p {
		case "contiguous", "paged", "chunked":
		default:
			fatal(fmt.Errorf("unknown policy %q (contiguous, paged, chunked, all)", p))
		}
	}
	srvCfg := serve.ServerConfig{MaxBatch: *batch, Aging: cfg.Aging}

	// buildMgr assembles one replica's manager over its own pool; the
	// returned closer releases a paged slab after the run.
	buildMgr := func(policy string, alloc memalloc.Allocator) (serve.CacheManager, func(), error) {
		switch policy {
		case "contiguous":
			return serve.NewContiguousKV(alloc, modelCfg, 1024), func() {}, nil
		case "paged":
			// Size the slab to ~85% of the device so the block pool, not
			// the pool allocator, is the binding constraint.
			perToken := serve.KVBytesPerToken(modelCfg)
			blocks := int(capBytes * 85 / 100 / (16 * perToken))
			m, err := serve.NewPagedKV(alloc, modelCfg, 16, blocks)
			if err != nil {
				return nil, nil, err
			}
			return m, m.Close, nil
		default: // chunked
			return serve.NewChunkedKV(alloc, modelCfg, 64), func() {}, nil
		}
	}

	// Policy runs are independent (each builds its own devices, pools and
	// managers over the identical request stream), so they sweep on the
	// worker pool; reports print in policy order regardless of which
	// finished first. -parallel overrides the conf string's parallel key.
	// Every policy serves through the cluster — with one replica the
	// cluster loop is byte-identical to the single-server Serve loop.
	workers := cfg.Parallelism
	if *par > 0 {
		workers = *par
	}
	type outcome struct {
		rep   serve.ClusterReport
		stats []memalloc.Stats
		err   error
	}
	results, err := runner.Collect(workers, len(policies), func(i int) outcome {
		allocs := make([]memalloc.Allocator, cfg.Replicas)
		mgrs := make([]serve.CacheManager, cfg.Replicas)
		for r := range mgrs {
			allocs[r] = newAlloc()
			mgr, closer, err := buildMgr(policies[i], allocs[r])
			if err != nil {
				return outcome{err: err}
			}
			defer closer()
			mgrs[r] = mgr
		}
		rep, err := serve.ServeCluster(reqs, func(r int) serve.CacheManager { return mgrs[r] },
			serve.ClusterConfig{Replicas: cfg.Replicas, Dispatch: dispatchPolicy, Server: srvCfg})
		stats := make([]memalloc.Stats, len(allocs))
		for r, a := range allocs {
			stats[r] = a.Stats()
		}
		return outcome{rep: rep, stats: stats, err: err}
	})
	if err != nil {
		fatal(err)
	}
	for i, res := range results {
		if res.err != nil {
			fmt.Printf("== %s: OOM: %v\n\n", policies[i], res.err)
			continue
		}
		printReport(policies[i], res.rep, res.stats)
	}
}

func printReport(policy string, rep serve.ClusterReport, stats []memalloc.Stats) {
	var util float64
	for _, st := range stats {
		util += st.Utilization()
	}
	util /= float64(len(stats))
	fmt.Printf("== %s: served %d in %s virtual, mean batch %.1f, %d preemptions, mean pool util %.1f%%\n",
		policy, rep.Served, rep.Duration.Round(time.Millisecond), rep.MeanBatch,
		rep.Preemptions, 100*util)
	if len(rep.Replicas) > 1 {
		for i, r := range rep.Replicas {
			fmt.Printf("   replica %d: %d assigned, %d served in %s, %d preemptions, pool util %.1f%%\n",
				i, rep.Assigned[i], r.Served, r.Duration.Round(time.Millisecond),
				r.Preemptions, 100*stats[i].Utilization())
		}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "class\tSLO\tserved\tTTFT p50\tp95\tp99\te2e p50\tp99\tpreempt\tKV share")
	row := func(class, slo string, served int, ttft, e2e serve.LatencySummary, preempt int64, share float64) {
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\t%s\t%s\t%s\t%d\t%.1f%%\n",
			class, slo, served, msRound(ttft.P50), msRound(ttft.P95), msRound(ttft.P99),
			msRound(e2e.P50), msRound(e2e.P99), preempt, 100*share)
	}
	for _, c := range rep.Classes {
		row(c.Class, c.SLO, c.Served, c.TTFT, c.E2E, c.Preemptions, c.KVShare)
	}
	row("ALL", "-", rep.Served, rep.TTFT, rep.E2E, rep.Preemptions, 1)
	w.Flush()
	fmt.Println()
}

func msRound(d time.Duration) string {
	return fmt.Sprintf("%dms", d.Milliseconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmlake-serve:", err)
	os.Exit(1)
}
