// Command gmlake-trace regenerates the paper's memory-trace figures as CSV
// files and ASCII charts.
//
// Usage:
//
//	gmlake-trace -figure 14 -dir out/       # Figure 14 timelines
//	gmlake-trace -figure 5  -dir out/       # Figure 5 footprint panels
//	gmlake-trace -figure 14 -ascii          # chart on stdout
//
// CSV columns are "seconds,active_bytes,reserved_bytes" in simulated time.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/plot"
)

func main() {
	var (
		figure = flag.Int("figure", 14, "figure to trace: 5 or 14")
		dir    = flag.String("dir", ".", "directory for CSV output")
		ascii  = flag.Bool("ascii", false, "render an ASCII chart to stdout")
		seed   = flag.Uint64("seed", 7, "workload generator seed")
	)
	flag.Parse()

	env := harness.NewEnv()
	env.Seed = *seed

	var series map[string]*metrics.Timeline
	var title string
	switch *figure {
	case 5:
		plain, lr := env.Figure5Timelines()
		series = map[string]*metrics.Timeline{"original": plain, "with-LR": lr}
		title = "Figure 5: GPT-NeoX-20B memory footprint (caching allocator)"
	case 14:
		t, tls := env.Figure14()
		t.Render(os.Stdout)
		series = tls
		title = "Figure 14: GPT-NeoX-20B memory trace, caching vs GMLake"
	default:
		fmt.Fprintln(os.Stderr, "gmlake-trace: -figure must be 5 or 14")
		os.Exit(2)
	}

	// series is a map: iterate its keys sorted so the "wrote ..." lines and
	// the chart's series order are byte-identical run to run.
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		tl := series[name]
		path := filepath.Join(*dir, fmt.Sprintf("figure%d_%s.csv", *figure, name))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmlake-trace:", err)
			os.Exit(1)
		}
		if err := tl.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "gmlake-trace:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s (%d samples, peak active %.1f GB, peak reserved %.1f GB)\n",
			path, tl.Len(),
			float64(tl.PeakActive())/(1<<30), float64(tl.PeakReserved())/(1<<30))
	}

	if *ascii {
		chart := plot.Chart{Title: title, XLabel: "seconds", YLabel: "GB"}
		for _, name := range names {
			tl := series[name]
			var xs, ys, yr []float64
			for _, s := range tl.Samples() {
				xs = append(xs, s.T.Seconds())
				ys = append(ys, float64(s.Active)/(1<<30))
				yr = append(yr, float64(s.Reserved)/(1<<30))
			}
			chart.Series = append(chart.Series,
				plot.Series{Name: name + "-active", X: xs, Y: ys},
				plot.Series{Name: name + "-reserved", X: xs, Y: yr})
		}
		chart.Render(os.Stdout)
	}
}
