// Command gmlake-bench regenerates the paper's evaluation tables and
// figures.
//
// Usage:
//
//	gmlake-bench -list
//	gmlake-bench -experiment figure10
//	gmlake-bench -experiment all -out results.txt
//	gmlake-bench -experiment headline -parallel 8
//
// Each experiment prints the same rows or series the paper reports, with the
// paper's expected values in the notes. Runs are deterministic: the same
// seed replays identical allocation streams, and because experiment cells
// share nothing and join by index, -parallel changes only wall-clock time —
// the rendered tables are byte-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		exp      = flag.String("experiment", "all", "experiment id (or 'all')")
		out      = flag.String("out", "", "also write results to this file")
		seed     = flag.Uint64("seed", 7, "workload generator seed")
		capacity = flag.Int64("capacity-gb", 80, "per-GPU memory in GiB")
		minSteps = flag.Int("min-steps", 40, "minimum training steps per run")
		maxSteps = flag.Int("max-steps", 200, "maximum training steps per run")
		par      = flag.Int("parallel", 0, "experiment-cell workers (0 = GOMAXPROCS, 1 = sequential)")
		traceIn  = flag.String("trace-in", "", "servetrace: replay this request-trace file instead of the canonical mixes")
		traceSc  = flag.Float64("trace-scale", 0, "servetrace: rate multiplier for the replayed trace (needs -trace-in)")
		exactSmp = flag.Int("exact-samples", 0, "serving latency-digest exact-retention threshold (0 = serve default; negative = sketch from the first sample)")
	)
	flag.Parse()

	if *par < 0 {
		fmt.Fprintf(os.Stderr, "gmlake-bench: -parallel must be >= 0, got %d\n", *par)
		os.Exit(2)
	}
	if *traceIn == "" && *traceSc != 0 {
		fmt.Fprintln(os.Stderr, "gmlake-bench: -trace-scale needs -trace-in")
		os.Exit(2)
	}

	if *list {
		for _, id := range harness.Experiments {
			fmt.Println(id)
		}
		return
	}

	env := harness.NewEnv()
	env.Seed = *seed
	env.Capacity = *capacity * sim.GiB
	env.TotalSteps = *minSteps
	env.MaxSteps = *maxSteps
	env.Parallelism = *par
	env.TraceIn = *traceIn
	env.TraceScale = *traceSc
	env.ExactSamples = *exactSmp

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmlake-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = harness.Experiments
	}
	for _, id := range ids {
		if !known(id) {
			fmt.Fprintf(os.Stderr, "gmlake-bench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
	}
	for _, id := range ids {
		// The experiments themselves run on virtual time; this is real
		// elapsed time shown to the operator, not simulation state.
		//lint:ignore wallclock real elapsed time for operator progress, outside simulated time
		start := time.Now()
		tables := env.RunExperiment(id)
		for _, t := range tables {
			t.Render(w)
		}
		//lint:ignore wallclock real elapsed time for operator progress, outside simulated time
		fmt.Fprintf(w, "(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func known(id string) bool {
	for _, k := range harness.Experiments {
		if strings.EqualFold(k, id) {
			return true
		}
	}
	return false
}
