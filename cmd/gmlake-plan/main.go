// Command gmlake-plan sizes a training job before anyone burns GPU hours:
// given a model and a device, it searches 3D-parallel topologies with the
// memory planner, picks an activation-checkpointing schedule for the best
// candidate, and estimates what offloading the optimizer would buy.
//
// Usage:
//
//	gmlake-plan -model GPT-NeoX-20B
//	gmlake-plan -model OPT-13B -capacity-gb 40 -micro 2 -max-world 64
//
// All numbers come from the same planners the library's experiments use;
// nothing is trained.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/parallel"
	"repro/internal/recompute"
	"repro/internal/sim"
	"repro/internal/stream"
)

func main() {
	var (
		modelName = flag.String("model", "GPT-NeoX-20B", "model name (see -models)")
		capacity  = flag.Int64("capacity-gb", 80, "per-GPU memory in GiB")
		micro     = flag.Int("micro", 4, "per-microbatch samples")
		maxWorld  = flag.Int("max-world", 32, "largest GPU count to consider")
		headroom  = flag.Float64("headroom", 0.1, "capacity fraction kept free for transients")
		listModel = flag.Bool("models", false, "list known models and exit")
	)
	flag.Parse()

	if *listModel {
		for _, m := range model.All {
			fmt.Printf("%-14s %6.1fB params, %d layers\n", m.Name, m.ParamsBillions(), m.Layers)
		}
		return
	}
	cfg, err := model.ByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	budget := *capacity * sim.GiB

	fmt.Printf("planning %s (%.1fB params) on %d GiB devices, headroom %.0f%%\n\n",
		cfg.Name, cfg.ParamsBillions(), *capacity, *headroom*100)

	plans := searchTopologies(cfg, *micro, *maxWorld)
	if len(plans) == 0 {
		log.Fatal("no valid topology found")
	}
	fmt.Printf("%-18s %6s %8s %14s %6s\n", "topology", "world", "zero", "max rank", "fits")
	var best *parallel.MemoryPlan
	for i := range plans {
		p := &plans[i]
		fits := p.Fits(budget, *headroom)
		fmt.Printf("%-18s %6d %8s %11.1f GB %6v\n",
			p.Topology.String(), p.Topology.World(), zeroFor(p.Topology),
			float64(p.MaxRankBytes())/float64(sim.GiB), fits)
		if fits && best == nil {
			best = p
		}
	}
	if best == nil {
		fmt.Println("\nno candidate fits — raise -max-world or lower -micro")
		os.Exit(1)
	}
	fmt.Printf("\nsmallest fitting job: %s (%d GPUs)\n\n", best.Topology.String(), best.Topology.World())

	// Checkpointing advice for the fitting plan: spend at most a quarter
	// of the remaining headroom on activations.
	m := recompute.ForModel(cfg, *micro, 0, 0)
	full := m.Evaluate(recompute.NoRecompute())
	actBudget := (budget - best.MaxRankBytes() + worstActs(best)) / 2
	if plan, err := m.PlanForBudget(actBudget); err == nil {
		r := m.Evaluate(plan)
		fmt.Printf("checkpointing: %d segments keep activations at %.1f GB (store-all %.1f GB), +%v/step recompute\n",
			r.Segments, gbf(r.PeakBytes), gbf(full.PeakBytes), r.ExtraTime.Round(time.Millisecond))
	} else {
		fmt.Printf("checkpointing: even per-layer checkpoints exceed %.1f GB (%v)\n", gbf(actBudget), err)
	}

	// Offload advice: what moving the optimizer to the host costs and
	// frees, per rank of the chosen plan.
	shard := model.ShardBytes(cfg.Params()*model.DTypeBytes, best.Topology.DP) /
		int64(best.Topology.TP*best.Topology.PP)
	clock := sim.NewClock()
	engine := offload.NewEngine(offload.DefaultPCIe(), stream.NewScheduler(clock))
	opt, err := offload.NewOptimizer(offload.OptimizerConfig{Pinned: true}, engine, nil, shard)
	if err != nil {
		log.Fatal(err)
	}
	step, err := opt.Step(shard)
	if err != nil {
		log.Fatal(err)
	}
	// Offloading removes the fp32 optimizer state (12 bytes/param of the
	// rank's shard) from the GPU.
	freed := 6 * shard
	fmt.Printf("offload: frees %.1f GB of GPU optimizer state per rank, needs %.1f GB host RAM,\n",
		gbf(freed), gbf(opt.HostStateBytes()))
	fmt.Printf("         adds ~%v per optimizer step over PCIe (pipelined)\n", step.Round(time.Millisecond))
}

// searchTopologies enumerates dp·tp·pp factorizations up to maxWorld and
// returns the best (smallest max-rank) plan per world size, ascending.
func searchTopologies(cfg model.Config, micro, maxWorld int) []parallel.MemoryPlan {
	bestByWorld := map[int]parallel.MemoryPlan{}
	for world := 1; world <= maxWorld; world *= 2 {
		for tp := 1; tp <= world; tp++ {
			if world%tp != 0 {
				continue
			}
			rest := world / tp
			for pp := 1; pp <= rest; pp++ {
				if rest%pp != 0 {
					continue
				}
				topo := parallel.Topology{DP: rest / pp, TP: tp, PP: pp}
				if topo.Validate(cfg) != nil {
					continue
				}
				plan, err := parallel.PlanMemory(cfg, topo, zeroFor(topo), parallel.OneFOneB, micro, 0)
				if err != nil {
					continue
				}
				cur, ok := bestByWorld[world]
				if !ok || plan.MaxRankBytes() < cur.MaxRankBytes() {
					bestByWorld[world] = plan
				}
			}
		}
	}
	out := make([]parallel.MemoryPlan, 0, len(bestByWorld))
	for _, p := range bestByWorld {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Topology.World() < out[j].Topology.World() })
	return out
}

// zeroFor picks the ZeRO stage: shard everything across the data-parallel
// group when there is one.
func zeroFor(t parallel.Topology) parallel.ZeROStage {
	if t.DP > 1 {
		return parallel.Stage3
	}
	return parallel.Stage0
}

// worstActs returns the activation bytes of the plan's worst stage.
func worstActs(p *parallel.MemoryPlan) int64 {
	var acts int64
	var worst int64
	for _, d := range p.Stages {
		if d.Total() > worst {
			worst = d.Total()
			acts = d.Activations
		}
	}
	return acts
}

func gbf(n int64) float64 { return float64(n) / float64(sim.GiB) }
