// Command gmlake-replay records fine-tuning allocation streams to JSON and
// replays them against any allocator — the cleanest apples-to-apples
// allocator comparison, since every run sees byte-identical requests.
//
// Usage:
//
//	gmlake-replay -record -model OPT-13B -strategy LRO -steps 20 -out stream.json
//	gmlake-replay -in stream.json -alloc gmlake
//	gmlake-replay -in stream.json -alloc all
//
// Recording uses the caching allocator (the stream is allocator-independent;
// the trainer emits identical requests either way).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/caching"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/expandable"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		record   = flag.Bool("record", false, "record a new trace instead of replaying")
		inPath   = flag.String("in", "", "trace JSON to replay")
		outPath  = flag.String("out", "trace.json", "output path for -record")
		alloc    = flag.String("alloc", "all", "replay target: caching|gmlake|expandable|compact|native|all")
		modelStr = flag.String("model", "OPT-13B", "model to record")
		strategy = flag.String("strategy", "LRO", "strategy letters for -record (e.g. N, R, LR, LRO)")
		world    = flag.Int("world", 4, "data-parallel world for -record")
		batch    = flag.Int("batch", 16, "per-GPU batch for -record")
		steps    = flag.Int("steps", 20, "training steps for -record")
		capacity = flag.Int64("capacity-gb", 80, "device memory in GiB")
		seed     = flag.Uint64("seed", 7, "workload seed")
	)
	flag.Parse()

	if *record {
		if err := doRecord(*modelStr, *strategy, *world, *batch, *steps, *capacity, *seed, *outPath); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *inPath == "" {
		log.Fatal("either -record or -in <trace.json> is required")
	}
	if err := doReplay(*inPath, *alloc, *capacity); err != nil {
		log.Fatal(err)
	}
}

func doRecord(modelStr, strategy string, world, batch, steps int, capacityGB int64, seed uint64, outPath string) error {
	m, err := model.ByName(modelStr)
	if err != nil {
		return err
	}
	strat, err := parseStrategy(strategy)
	if err != nil {
		return err
	}
	clock := sim.NewClock()
	dev := gpu.NewDevice("rec", capacityGB*sim.GiB)
	rec := trace.NewRecorder(caching.New(cuda.NewDriver(dev, clock, sim.DefaultCostModel())), clock)
	tr, err := workload.NewTrainer(workload.Spec{
		Model: m, Strategy: strat, World: world, Batch: batch, Seed: seed,
	}, rec, clock)
	if err != nil {
		return err
	}
	if err := tr.Setup(); err != nil {
		return fmt.Errorf("setup OOM: %w", err)
	}
	for i := 0; i < steps; i++ {
		if err := tr.Step(); err != nil {
			return fmt.Errorf("step %d OOM: %w", i, err)
		}
	}
	tr.Teardown()

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.Trace().WriteJSON(f); err != nil {
		return err
	}
	st := rec.Trace().Stats()
	fmt.Printf("recorded %d allocs (%d frees, avg %s) to %s\n",
		st.Allocs, st.Frees, sim.FormatBytes(st.MeanBytes), outPath)
	return nil
}

func doReplay(inPath, allocName string, capacityGB int64) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadJSON(f)
	if err != nil {
		return err
	}
	st := tr.Stats()
	fmt.Printf("replaying %d allocations (avg %s)\n\n", st.Allocs, sim.FormatBytes(st.MeanBytes))

	names := []string{allocName}
	if allocName == "all" {
		names = []string{"caching", "gmlake", "expandable", "compact"}
	}
	fmt.Printf("%-12s %14s %14s %8s\n", "allocator", "peak active", "peak reserved", "util")
	for _, name := range names {
		a, err := newAllocator(name, capacityGB)
		if err != nil {
			return err
		}
		if err := trace.Replay(tr, a); err != nil {
			fmt.Printf("%-12s OOM: %v\n", name, err)
			continue
		}
		s := a.Stats()
		fmt.Printf("%-12s %11.1f GB %11.1f GB %7.1f%%\n", name,
			float64(s.PeakActive)/float64(sim.GiB),
			float64(s.PeakReserved)/float64(sim.GiB), 100*s.Utilization())
	}
	return nil
}

func newAllocator(name string, capacityGB int64) (memalloc.Allocator, error) {
	drv := cuda.NewDriver(gpu.NewDevice(name, capacityGB*sim.GiB), sim.NewClock(), sim.DefaultCostModel())
	switch name {
	case "caching":
		return caching.New(drv), nil
	case "gmlake":
		return core.NewDefault(drv), nil
	case "expandable":
		return expandable.New(drv), nil
	case "compact":
		return compact.New(drv), nil
	case "native":
		return memalloc.NewNative(drv), nil
	default:
		return nil, fmt.Errorf("unknown allocator %q", name)
	}
}

func parseStrategy(s string) (workload.Strategy, error) {
	var out workload.Strategy
	for _, c := range s {
		switch c {
		case 'N', 'n':
		case 'L', 'l':
			out.LoRA = true
		case 'R', 'r':
			out.Recompute = true
		case 'O', 'o':
			out.Offload = true
		default:
			return out, fmt.Errorf("unknown strategy letter %q", c)
		}
	}
	return out, nil
}
