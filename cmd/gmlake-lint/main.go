// Command gmlake-lint runs the determinism-contract linter (internal/lint)
// over the repository: a stdlib-only go/ast + go/types analysis suite that
// mechanically enforces the byte-identical-run invariant every table and
// BENCH number in this repo rests on.
//
// Usage:
//
//	gmlake-lint ./...                 # whole module (CI runs this)
//	gmlake-lint ./internal/serve      # one package
//	gmlake-lint -json ./...           # machine-readable findings (incl. call chains)
//	gmlake-lint -why ./...            # print each finding's shortest call chain
//	gmlake-lint -list                 # analyzer names and docs
//
// The interprocedural analyzers (wallclockflow, randflow, parcapture)
// resolve calls across the whole loaded package set, so run them over
// ./... — linting a single package sees only that package's bodies and
// may under-report transitive effects.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Justified
// exceptions are silenced in source with
// `//lint:ignore <analyzer> <reason>`; stale or malformed directives are
// themselves findings, so suppressions cannot rot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		why     = flag.Bool("why", false, "print each finding's shortest call chain to the effect leaf")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-14s %s\n", lint.IgnoreCheck, "(engine) //lint:ignore directives must be well-formed and must suppress something")
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmlake-lint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmlake-lint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmlake-lint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.All())

	if *jsonOut {
		type finding struct {
			Analyzer string   `json:"analyzer"`
			File     string   `json:"file"`
			Line     int      `json:"line"`
			Col      int      `json:"col"`
			Message  string   `json:"message"`
			Chain    []string `json:"chain,omitempty"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				Analyzer: d.Analyzer,
				File:     relTo(root, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
				Chain:    d.Chain,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "gmlake-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s [%s]\n", relTo(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
			if *why && len(d.Chain) > 0 {
				fmt.Printf("\twhy: %s\n", strings.Join(d.Chain, " → "))
			}
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gmlake-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// relTo renders path relative to root when possible, for stable output.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return path
}
