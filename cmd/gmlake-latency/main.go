// Command gmlake-latency runs the driver-level microbenchmarks behind the
// paper's Table 1 and Figure 6: the latency of the native allocator versus
// the low-level VMM allocator across physical chunk sizes.
//
// Usage:
//
//	gmlake-latency            # both tables
//	gmlake-latency -ascii     # plus an ASCII rendering of the Figure 6 sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/plot"
)

func main() {
	ascii := flag.Bool("ascii", false, "render the Figure 6 sweep as an ASCII chart")
	speedup := flag.Bool("speedup", false, "also measure the native-vs-caching end-to-end ratio (§2.2)")
	flag.Parse()

	env := harness.NewEnv()
	t1 := env.Table1()
	t1.Render(os.Stdout)
	f6 := env.Figure6()
	f6.Render(os.Stdout)

	if *speedup {
		fmt.Printf("native/caching allocator-time ratio over 2000 (alloc,free) pairs: %.1fx\n",
			env.NativeVsCachingSpeedup(2000))
		fmt.Printf("native/caching end-to-end step-time ratio (OPT-1.3B fine-tune): %.1fx (paper: 9.7x)\n\n",
			env.NativeSlowdownEndToEnd())
	}

	if *ascii {
		chart := plot.Chart{
			Title:  "Figure 6: allocation latency by chunk size (log y)",
			XLabel: "log2(chunk MiB)", YLabel: "ms", LogY: true,
		}
		// Columns: 512MB, 1GB, 2GB blocks; rows after "Native" are chunk
		// sizes ascending by powers of two.
		for col := 1; col <= 3; col++ {
			var xs, ys []float64
			for i, row := range f6.Rows {
				if row[0] == "Native" {
					continue
				}
				v, err := strconv.ParseFloat(strings.TrimSpace(row[col]), 64)
				if err != nil {
					continue
				}
				xs = append(xs, float64(i)) // log2 position: rows ascend by 2x
				ys = append(ys, v)
			}
			chart.Series = append(chart.Series, plot.Series{Name: f6.Header[col], X: xs, Y: ys})
		}
		chart.Render(os.Stdout)
	}
}
