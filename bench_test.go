// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus allocator micro-benchmarks and ablations of GMLake's design choices.
//
// Each BenchmarkTableN/BenchmarkFigureN runs a (step-reduced) version of the
// corresponding experiment once per iteration and reports the figure's
// headline quantity as a custom metric, so `go test -bench=. -benchmem`
// regenerates the whole evaluation. cmd/gmlake-bench prints the full tables.
package gmlake

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/caching"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/lint"
	"repro/internal/memalloc"
	"repro/internal/model"
	"repro/internal/reqtrace"
	"repro/internal/serve"
	"repro/internal/servegen"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchEnv runs experiments with reduced step budgets so the full benchmark
// suite finishes in minutes. The shapes are unchanged; absolute reserved
// numbers are within a few percent of the full-budget runs.
func benchEnv() *harness.Env {
	e := harness.NewEnv()
	e.TotalSteps = 15
	e.MaxSteps = 90
	e.MeasureSteps = 5
	return e
}

func renderAll(b *testing.B, tables []*harness.Table) {
	b.Helper()
	for _, t := range tables {
		t.Render(io.Discard)
	}
}

func BenchmarkTable1(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.Table1()})
	}
}

func BenchmarkFigure3(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.Figure3()})
	}
}

func BenchmarkFigure4(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.Figure4()})
	}
}

func BenchmarkFigure5(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.Figure5()})
	}
}

func BenchmarkFigure6(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.Figure6()})
	}
}

func BenchmarkFigure10(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, e.Figure10())
	}
}

func BenchmarkFigure11(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, e.Figure11())
	}
}

func BenchmarkFigure12(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.Figure12()})
	}
}

func BenchmarkFigure13(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, e.Figure13())
	}
}

func BenchmarkFigure14(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		t, _ := e.Figure14()
		renderAll(b, []*harness.Table{t})
	}
}

func BenchmarkHeadline(b *testing.B) {
	e := benchEnv()
	var saved float64
	for i := 0; i < b.N; i++ {
		spec := workload.Spec{Model: model.OPT13B, Strategy: workload.StrategyLRO, World: 4, Batch: 24}
		base, gml := e.Compare(spec, harness.RunOptions{})
		saved = float64(base.PeakReserved-gml.PeakReserved) / float64(sim.GiB)
	}
	b.ReportMetric(saved, "GB-saved")
}

func BenchmarkExtended(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.Extended()})
	}
}

func BenchmarkCluster(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.ClusterExperiment()})
	}
}

// --- Allocator micro-benchmarks ---

func newBenchDriver(capacity int64) *cuda.Driver {
	dev := gpu.NewDevice("bench", capacity)
	return cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
}

// BenchmarkGMLakeExactMatch measures the steady-state S1 hot path: one
// alloc+free pair served entirely from the cached pools.
func BenchmarkGMLakeExactMatch(b *testing.B) {
	alloc := core.NewDefault(newBenchDriver(8 * sim.GiB))
	warm, _ := alloc.Alloc(256 * sim.MiB)
	alloc.Free(warm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := alloc.Alloc(256 * sim.MiB)
		if err != nil {
			b.Fatal(err)
		}
		alloc.Free(buf)
	}
}

// BenchmarkGMLakeStitch measures the S3 path: every iteration fuses two free
// pBlocks into a fresh sBlock (the stitched pool is flushed each time so the
// exact match can never hit).
func BenchmarkGMLakeStitch(b *testing.B) {
	alloc := core.NewDefault(newBenchDriver(8 * sim.GiB))
	b1, _ := alloc.Alloc(128 * sim.MiB)
	b2, _ := alloc.Alloc(128 * sim.MiB)
	alloc.Free(b1)
	alloc.Free(b2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := alloc.Alloc(256 * sim.MiB)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		alloc.Free(buf)
		alloc.EmptyCache() // drop pools so the next stitch starts cold
		w1, _ := alloc.Alloc(128 * sim.MiB)
		w2, _ := alloc.Alloc(128 * sim.MiB)
		alloc.Free(w1)
		alloc.Free(w2)
		b.StartTimer()
	}
}

// BenchmarkCachingBestFit measures the baseline's cache-hit path.
func BenchmarkCachingBestFit(b *testing.B) {
	alloc := caching.New(newBenchDriver(8 * sim.GiB))
	warm, _ := alloc.Alloc(256 * sim.MiB)
	alloc.Free(warm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := alloc.Alloc(256 * sim.MiB)
		if err != nil {
			b.Fatal(err)
		}
		alloc.Free(buf)
	}
}

// BenchmarkNativeAllocFree measures the strawman's driver round trip.
func BenchmarkNativeAllocFree(b *testing.B) {
	alloc := memalloc.NewNative(newBenchDriver(8 * sim.GiB))
	for i := 0; i < b.N; i++ {
		buf, err := alloc.Alloc(256 * sim.MiB)
		if err != nil {
			b.Fatal(err)
		}
		alloc.Free(buf)
	}
}

// BenchmarkTrainerStep measures one full fine-tuning step through GMLake in
// steady state — the end-to-end hot path of the library.
func BenchmarkTrainerStep(b *testing.B) {
	drv := newBenchDriver(80 * sim.GiB)
	alloc := core.NewDefault(drv)
	spec := workload.Spec{Model: model.OPT1_3B, Strategy: workload.StrategyLR, World: 4, Batch: 16, Seed: 7}
	tr, err := workload.NewTrainer(spec, alloc, drv.Clock())
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.Setup(); err != nil {
		b.Fatal(err)
	}
	defer tr.Teardown()
	for i := 0; i < 60; i++ { // converge
		if err := tr.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md design choices) ---

// ablationRun measures peak reserved and virtual step time for one GMLake
// configuration on the fragmentation-prone LRO workload.
func ablationRun(b *testing.B, cfg core.Config) (reservedGB, virtSec float64) {
	b.Helper()
	drv := newBenchDriver(80 * sim.GiB)
	alloc := core.New(drv, cfg)
	spec := workload.Spec{Model: model.OPT13B, Strategy: workload.StrategyLRO, World: 4, Batch: 24, Seed: 7}
	tr, err := workload.NewTrainer(spec, alloc, drv.Clock())
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.Setup(); err != nil {
		b.Fatal(err)
	}
	defer tr.Teardown()
	const steps = 40
	start := drv.Clock().Now()
	for i := 0; i < steps; i++ {
		if err := tr.Step(); err != nil {
			b.Fatal(err)
		}
	}
	virt := (drv.Clock().Now() - start).Seconds() / steps
	return float64(alloc.Stats().PeakReserved) / float64(sim.GiB), virt
}

// BenchmarkAblationRebindOnSplit compares split semantics: rebinding cached
// sBlocks across splits (our extension) vs destroying them (the paper's
// literal description). Rebinding preserves the convergence tape, which
// shows up as lower steady-state virtual step time.
func BenchmarkAblationRebindOnSplit(b *testing.B) {
	for _, rebind := range []bool{true, false} {
		name := "rebind"
		if !rebind {
			name = "destroy"
		}
		b.Run(name, func(b *testing.B) {
			var res, virt float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.RebindOnSplit = rebind
				res, virt = ablationRun(b, cfg)
			}
			b.ReportMetric(res, "GB-reserved")
			b.ReportMetric(virt, "virt-s/step")
		})
	}
}

// BenchmarkAblationFragLimit sweeps the §4.2.3 fragmentation limit.
func BenchmarkAblationFragLimit(b *testing.B) {
	for _, limMB := range []int64{2, 32, 128, 512} {
		b.Run(sim.FormatBytes(limMB*sim.MiB), func(b *testing.B) {
			var res, virt float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.FragLimit = limMB * sim.MiB
				res, virt = ablationRun(b, cfg)
			}
			b.ReportMetric(res, "GB-reserved")
			b.ReportMetric(virt, "virt-s/step")
		})
	}
}

// BenchmarkAblationSPoolCap sweeps the StitchFree cap: a small stitched pool
// evicts the cached views GMLake converges on.
func BenchmarkAblationSPoolCap(b *testing.B) {
	for _, cap := range []int{64, 1024, 32768} {
		b.Run(sim.FormatBytes(int64(cap)), func(b *testing.B) {
			var res, virt float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.MaxSBlocks = cap
				res, virt = ablationRun(b, cfg)
			}
			b.ReportMetric(res, "GB-reserved")
			b.ReportMetric(virt, "virt-s/step")
		})
	}
}

// BenchmarkZeRO regenerates the ZeRO stage/world table (extension).
func BenchmarkZeRO(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.ZeROExperiment()})
	}
}

// BenchmarkTopology regenerates the 3D-parallelism memory-plan table
// (extension).
func BenchmarkTopology(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.TopologyExperiment()})
	}
}

// BenchmarkRecomputePlans regenerates the checkpointing-plan table
// (extension).
func BenchmarkRecomputePlans(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.RecomputeExperiment()})
	}
}

// BenchmarkOffloadPipeline regenerates the ZeRO-Offload pipeline table
// (extension).
func BenchmarkOffloadPipeline(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.OffloadExperiment()})
	}
}

// BenchmarkStreams regenerates the record_stream deferral table (extension).
func BenchmarkStreams(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.StreamsExperiment()})
	}
}

// BenchmarkServing regenerates the KV-cache policy comparison (extension;
// the paper's Table 3 scope argument).
func BenchmarkServing(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.ServingExperiment()})
	}
}

// BenchmarkFragIndex regenerates the FMFI-style fragmentation indices
// (extension).
func BenchmarkFragIndex(b *testing.B) {
	e := benchEnv()
	e.TotalSteps = 6
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.FragIndexExperiment()})
	}
}

// BenchmarkServeDecodeStep prices one decode step across KV policies: the
// per-token allocator work each policy pays at batch 16.
func BenchmarkServeDecodeStep(b *testing.B) {
	for _, pool := range []string{"caching", "gmlake"} {
		b.Run("chunked-"+pool, func(b *testing.B) {
			dev := gpu.NewDevice("bench", 40*sim.GiB)
			drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
			var alloc memalloc.Allocator
			if pool == "gmlake" {
				alloc = core.NewDefault(drv)
			} else {
				alloc = caching.New(drv)
			}
			mgr := serve.NewChunkedKV(alloc, model.OPT1_3B, 64)
			admitAll := func() []serve.SeqHandle {
				handles := make([]serve.SeqHandle, 0, 16)
				for s := 0; s < 16; s++ {
					h, err := mgr.Admit(serve.Request{ID: s, PromptLen: 64 + 16*s, OutputLen: 1 << 20})
					if err != nil {
						b.Fatal(err)
					}
					handles = append(handles, h)
				}
				return handles
			}
			handles := admitAll()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Recycle sequences periodically so unbounded b.N cannot
				// exhaust the simulated device.
				if i > 0 && i%512 == 0 {
					for _, h := range handles {
						mgr.Release(h)
					}
					handles = admitAll()
				}
				for _, h := range handles {
					if err := mgr.Append(h); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Serving-loop and harness-engine trajectory benchmarks ---

// BenchmarkServeStream prices the continuous-batching loop itself on a long
// mixed-bursty multi-tenant stream. The arrival rate is cranked an order of
// magnitude above the server's service rate so thousands of requests are
// pending at once — the regime where admission, idle-jump and victim
// selection dominate the loop. Reports ns per served request.
func BenchmarkServeStream(b *testing.B) {
	const requests = 4000
	mix := servegen.MixedBursty()
	reqs, err := mix.WithRate(mix.Rate*10).Generate(requests, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv := newBenchDriver(4 * sim.GiB)
		mgr := serve.NewChunkedKV(caching.New(drv), model.OPT1_3B, 64)
		rep, err := serve.Serve(reqs, mgr, serve.ServerConfig{MaxBatch: 32})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Served != requests {
			b.Fatalf("served %d of %d", rep.Served, requests)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*requests), "ns/request")
}

// BenchmarkServeScale is the million-request scale benchmark: one server at
// a near-sustainable 2x mixed-bursty rate (the backlog stays bounded, so
// the run measures steady-state serving rather than queue pathology) over
// 1M and 10M requests. Beyond the streaming-quantile threshold the latency
// digests hold a fixed number of sketch buckets however long the run, so
// memory is flat in n; retained-samples vs sketched-samples is the report's
// footprint proxy (raw samples held exactly versus samples absorbed into
// fixed-size sketches). Reports ns per served request plus both counts.
func BenchmarkServeScale(b *testing.B) {
	mix := servegen.MixedBursty()
	for _, requests := range []int{1_000_000, 10_000_000} {
		// "=" rather than "-" before the count: scripts/bench.sh treats a
		// trailing "-<digits>" as go test's GOMAXPROCS suffix.
		b.Run(fmt.Sprintf("requests=%d", requests), func(b *testing.B) {
			reqs, err := mix.WithRate(mix.Rate*2).Generate(requests, 7)
			if err != nil {
				b.Fatal(err)
			}
			var retained, sketched int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drv := newBenchDriver(4 * sim.GiB)
				mgr := serve.NewChunkedKV(caching.New(drv), model.OPT1_3B, 64)
				rep, err := serve.Serve(reqs, mgr, serve.ServerConfig{MaxBatch: 32})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Served != requests {
					b.Fatalf("served %d of %d", rep.Served, requests)
				}
				retained, sketched = rep.RetainedSamples, rep.SketchedSamples
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*requests), "ns/request")
			b.ReportMetric(float64(retained), "retained-samples")
			b.ReportMetric(float64(sketched), "sketched-samples")
		})
	}
}

// BenchmarkServeCluster prices the multi-replica cluster on the same 10x
// overloaded mixed-bursty stream at 1→8 replicas under join-shortest-queue
// dispatch and 2s priority aging. It reports ns per served request (the
// scheduler + dispatch cost) and the batch class's p99 E2E in milliseconds —
// the starvation tail the replicas and aging exist to shrink
// (scripts/bench.sh records both in BENCH_*.json).
func BenchmarkServeCluster(b *testing.B) {
	const requests = 4000
	mix := servegen.MixedBursty()
	reqs, err := mix.WithRate(mix.Rate*10).Generate(requests, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, replicas := range []int{1, 2, 4, 8} {
		// "=" rather than "-" before the count: scripts/bench.sh treats a
		// trailing "-<digits>" as go test's GOMAXPROCS suffix.
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			var batchP99 time.Duration
			for i := 0; i < b.N; i++ {
				rep, err := serve.ServeCluster(reqs, func(int) serve.CacheManager {
					return serve.NewChunkedKV(caching.New(newBenchDriver(4*sim.GiB)), model.OPT1_3B, 64)
				}, serve.ClusterConfig{
					Replicas: replicas,
					Dispatch: serve.DispatchJSQ,
					Server:   serve.ServerConfig{MaxBatch: 32, Aging: 2 * time.Second},
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Served != requests {
					b.Fatalf("served %d of %d", rep.Served, requests)
				}
				batchP99 = rep.Class("batch-backfill").E2E.P99
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*requests), "ns/request")
			b.ReportMetric(float64(batchP99.Milliseconds()), "batch-p99-ms")
		})
	}
}

// BenchmarkServeElastic prices elasticity on the 10x-overloaded
// mixed-bursty stream: the static MaxReplicas fleet versus the autoscaled
// (and autoscaled + work-stealing) 1..MaxReplicas fleet. Each variant
// reports ns per served request, the batch class's p99 E2E and the fleet's
// replica-seconds; scripts/bench.sh derives elastic_drain_savings (the
// replica-seconds the autoscaler did not consume versus the static fleet)
// and elastic_p99_ratio (the latency price paid for them) into
// BENCH_*.json.
func BenchmarkServeElastic(b *testing.B) {
	const (
		requests = 4000
		maxFleet = 8
	)
	mix := servegen.MixedBursty()
	reqs, err := mix.WithRate(mix.Rate*10).Generate(requests, 7)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		cfg  serve.ClusterConfig
	}{
		{"fleet=static", serve.ClusterConfig{
			Replicas: maxFleet,
			Dispatch: serve.DispatchJSQ,
			Server:   serve.ServerConfig{MaxBatch: 32, Aging: 2 * time.Second},
		}},
		{"fleet=elastic", serve.ClusterConfig{
			MinReplicas: 1, MaxReplicas: maxFleet,
			Dispatch: serve.DispatchJSQ,
			Server:   serve.ServerConfig{MaxBatch: 32, Aging: 2 * time.Second},
		}},
		{"fleet=elastic+steal", serve.ClusterConfig{
			MinReplicas: 1, MaxReplicas: maxFleet, Steal: true,
			Dispatch: serve.DispatchJSQ,
			Server:   serve.ServerConfig{MaxBatch: 32, Aging: 2 * time.Second},
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var batchP99, replicaSecs time.Duration
			for i := 0; i < b.N; i++ {
				rep, err := serve.ServeCluster(reqs, func(int) serve.CacheManager {
					return serve.NewChunkedKV(caching.New(newBenchDriver(4*sim.GiB)), model.OPT1_3B, 64)
				}, v.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Served != requests {
					b.Fatalf("served %d of %d", rep.Served, requests)
				}
				batchP99 = rep.Class("batch-backfill").E2E.P99
				replicaSecs = rep.ReplicaSeconds
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*requests), "ns/request")
			b.ReportMetric(float64(batchP99.Milliseconds()), "batch-p99-ms")
			b.ReportMetric(replicaSecs.Seconds(), "replica-secs")
		})
	}
}

// BenchmarkServeFaults prices serving under replica crashes: the
// 10x-overloaded mixed-bursty stream on a 4-replica fleet at four fault
// intensities (fault-free, then MTTF 8s/4s/2s with MTTR 400ms), retries:3
// with exponential backoff and a 120s deadline. Each variant reports
// goodput as a percentage of the offered load and the capacity-weighted
// availability; scripts/bench.sh charts them as goodput_under_faults and
// availability in BENCH_*.json. Faults come from seeded streams, so every
// iteration replays the identical fault history.
func BenchmarkServeFaults(b *testing.B) {
	const (
		requests = 2000
		fleet    = 4
	)
	mix := servegen.MixedBursty()
	reqs, err := mix.WithRate(mix.Rate*10).Generate(requests, 7)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		mttf time.Duration
	}{
		{"faults=none", 0},
		{"faults=mttf8s", 8 * time.Second},
		{"faults=mttf4s", 4 * time.Second},
		{"faults=mttf2s", 2 * time.Second},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := serve.ClusterConfig{
				Replicas: fleet,
				Dispatch: serve.DispatchJSQ,
				Server:   serve.ServerConfig{MaxBatch: 32, Timeout: 120 * time.Second},
				Recovery: serve.RecoveryConfig{Retries: 3, Backoff: 2},
			}
			if v.mttf > 0 {
				cfg.Faults = serve.FaultConfig{MTTF: v.mttf, MTTR: 400 * time.Millisecond, Seed: 7}
			}
			var rep serve.ClusterReport
			for i := 0; i < b.N; i++ {
				rep, err = serve.ServeCluster(reqs, func(int) serve.CacheManager {
					return serve.NewChunkedKV(caching.New(newBenchDriver(4*sim.GiB)), model.OPT1_3B, 64)
				}, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			if v.mttf == 0 && rep.Goodput != requests {
				b.Fatalf("fault-free goodput %d of %d", rep.Goodput, requests)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*requests), "ns/request")
			b.ReportMetric(100*float64(rep.Goodput)/float64(requests), "goodput-pct")
			b.ReportMetric(100*rep.Availability, "avail-pct")
			b.ReportMetric(float64(rep.Crashes), "crashes")
		})
	}
}

// BenchmarkServeSession prices session-grade serving: the chat-sessions
// multi-turn mix (prompts growing by the prior exchange) on a 4-replica
// fleet with KV prefix reuse on, under session-affinity dispatch versus
// plain jsq and least-kv. Each variant reports the cluster TTFT p50/p99,
// the prefill tokens skipped on resident prefixes, how many requests the
// sticky probe routed, and the dispatch load imbalance (max−min assigned
// as a percentage of the per-replica mean); scripts/bench.sh derives
// affinity_ttft_savings (jsq TTFT p50 − affinity TTFT p50) into
// BENCH_*.json — the milliseconds the affinity router saves per median
// request by not scattering a conversation's turns across the fleet.
func BenchmarkServeSession(b *testing.B) {
	const (
		requests = 4000
		fleet    = 4
	)
	mix := servegen.ChatSessions()
	reqs, err := mix.WithRate(mix.Rate*8).Generate(requests, 7)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name     string
		dispatch serve.DispatchPolicy
		base     serve.DispatchPolicy
	}{
		{"dispatch=affinity", serve.DispatchSessionAffinity, serve.DispatchJSQ},
		{"dispatch=jsq", serve.DispatchJSQ, ""},
		{"dispatch=least-kv", serve.DispatchLeastKV, ""},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var rep serve.ClusterReport
			for i := 0; i < b.N; i++ {
				rep, err = serve.ServeCluster(reqs, func(int) serve.CacheManager {
					return serve.NewChunkedKV(caching.New(newBenchDriver(4*sim.GiB)), model.OPT1_3B, 64)
				}, serve.ClusterConfig{
					Replicas:     fleet,
					Dispatch:     v.dispatch,
					AffinityBase: v.base,
					Server:       serve.ServerConfig{MaxBatch: 32, PrefixReuse: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Served != requests {
					b.Fatalf("served %d of %d", rep.Served, requests)
				}
			}
			min, max := rep.Assigned[0], rep.Assigned[0]
			for _, n := range rep.Assigned[1:] {
				if n < min {
					min = n
				}
				if n > max {
					max = n
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*requests), "ns/request")
			b.ReportMetric(float64(rep.TTFT.P50.Microseconds())/1e3, "ttft-p50-ms")
			b.ReportMetric(float64(rep.TTFT.P99.Microseconds())/1e3, "ttft-p99-ms")
			b.ReportMetric(float64(rep.ReusedTokens), "reused-tok")
			b.ReportMetric(float64(rep.AffinityRouted), "affinity-routed")
			b.ReportMetric(100*float64(max-min)/(float64(requests)/fleet), "imbalance-pct")
		})
	}
}

// BenchmarkTraceReplay prices request-stream production: generating the
// 10x-overloaded mixed-bursty stream synthetically versus replaying it from
// a captured request trace (decode from in-memory JSONL bytes + replay —
// the whole per-run cost a trace-driven experiment pays instead of
// generation). Both report ns per produced request; scripts/bench.sh
// derives their ratio as trace_replay_overhead in BENCH_*.json.
func BenchmarkTraceReplay(b *testing.B) {
	const requests = 4000
	mix := servegen.MixedBursty()
	over := mix.WithRate(mix.Rate * 10)
	reqs, err := over.Generate(requests, 7)
	if err != nil {
		b.Fatal(err)
	}
	var encoded bytes.Buffer
	if err := reqtrace.FromRequests(reqs).WriteJSONL(&encoded); err != nil {
		b.Fatal(err)
	}

	b.Run("source=synthetic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := over.Generate(requests, 7)
			if err != nil || len(out) != requests {
				b.Fatalf("generated %d: %v", len(out), err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*requests), "ns/request")
	})
	b.Run("source=replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, err := reqtrace.Read(bytes.NewReader(encoded.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			out, err := tr.Replay(reqtrace.ReplayOptions{})
			if err != nil || len(out) != requests {
				b.Fatalf("replayed %d: %v", len(out), err)
			}
			if out[0] != reqs[0] || out[requests-1] != reqs[requests-1] {
				b.Fatal("replay diverged from the generated stream")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*requests), "ns/request")
	})
}

// BenchmarkTraceFit prices calibration — fitting a servegen mix to a
// 4000-request trace — and reports the fitted mix's aggregate fit error
// (mean of the rate and length moment-match errors, in percent) as
// fit-err-pct; scripts/bench.sh records it as the fit_error derived metric
// in BENCH_*.json, charting calibration quality over PRs alongside its
// cost.
func BenchmarkTraceFit(b *testing.B) {
	const requests = 4000
	mix := servegen.MixedBursty()
	reqs, err := mix.WithRate(mix.Rate*10).Generate(requests, 7)
	if err != nil {
		b.Fatal(err)
	}
	tr := reqtrace.FromRequests(reqs)
	var fitErr float64
	for i := 0; i < b.N; i++ {
		m, err := reqtrace.Fit(tr)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := reqtrace.FitError(tr, m, requests, 11)
		if err != nil {
			b.Fatal(err)
		}
		fitErr = (rep.RateErr + rep.PromptMeanErr + rep.OutputMeanErr) / 3
	}
	b.ReportMetric(100*fitErr, "fit-err-pct")
}

// harnessBenchSlice is the experiment list the engine benchmarks sweep: a
// mix of cheap micro tables and the cell-heavy extended comparison, enough
// work for the worker pool to matter without the full-suite runtime.
var harnessBenchSlice = []string{"table1", "figure3", "figure4", "figure12", "extended"}

func benchmarkHarness(b *testing.B, parallelism int) {
	e := benchEnv()
	e.Parallelism = parallelism
	for i := 0; i < b.N; i++ {
		for _, id := range harnessBenchSlice {
			renderAll(b, e.RunExperiment(id))
		}
	}
}

// BenchmarkHarnessSequential pins the single-worker wall-clock of the
// experiment slice; BenchmarkHarnessParallel runs the identical cells on
// the GOMAXPROCS-bounded pool. Their ratio is the engine's speedup on this
// host (scripts/bench.sh records it in BENCH_*.json).
func BenchmarkHarnessSequential(b *testing.B) { benchmarkHarness(b, 1) }

// BenchmarkHarnessParallel is the same slice at Parallelism = GOMAXPROCS.
func BenchmarkHarnessParallel(b *testing.B) { benchmarkHarness(b, 0) }

// BenchmarkPipeFrag regenerates the pipeline-schedule fragmentation table
// (extension).
func BenchmarkPipeFrag(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		renderAll(b, []*harness.Table{e.PipelineExperiment()})
	}
}

// BenchmarkLintTree measures the determinism-contract linter's full-suite
// wall time over the whole repository — parse, type-check, call-graph
// construction, effect propagation and every analyzer — the same work the
// CI lint step performs. scripts/bench.sh tracks its per-run milliseconds
// in BENCH_*.json (lint_tree_ms) so a complexity regression in the
// interprocedural passes shows up in the trajectory, and scripts/lint_ci.sh
// enforces a hard 2x budget against the recorded baseline on every push.
func BenchmarkLintTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// A fresh loader per iteration: memoization would otherwise make
		// every iteration after the first measure nothing but analysis
		// re-runs on cached type information.
		l, err := lint.NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.Load("./...")
		if err != nil {
			b.Fatal(err)
		}
		if diags := lint.Run(pkgs, lint.All()); len(diags) > 0 {
			b.Fatalf("lint tree not clean: %d finding(s), first: %s", len(diags), diags[0])
		}
	}
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "lint-ms")
}
