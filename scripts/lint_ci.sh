#!/usr/bin/env bash
# lint_ci.sh — CI wrapper for the determinism-contract linter.
#
# Two jobs beyond a plain `go run ./cmd/gmlake-lint ./...`:
#
#   1. Findings as an artifact. The linter runs with -json and the
#      findings land in $LINT_JSON_OUT (default lint-findings.json), so
#      the CI workflow can upload them on failure and a reviewer gets the
#      machine-readable report — including each interprocedural finding's
#      shortest call chain — without rerunning anything. On findings the
#      human-readable rendering (with chains, as -why would print) is
#      also echoed to the step log.
#
#   2. Runtime budget. The linter is on the critical path of every push;
#      an accidental complexity regression in the call-graph or effect
#      passes (e.g. chain reconstruction going quadratic) should fail
#      loudly, not silently double CI latency. The analysis wall time is
#      compared against the recorded baseline in scripts/lint_baseline_ms
#      and the step fails if it exceeds LINT_BUDGET_FACTOR× (default 2×)
#      that baseline. Re-record the baseline (see below) when the tree or
#      the linter legitimately grows.
#
# The binary is built first so the budget measures analysis time, not
# compilation. Record a new baseline with:
#
#   LINT_RECORD_BASELINE=1 scripts/lint_ci.sh
set -uo pipefail
cd "$(dirname "$0")/.."

OUT="${LINT_JSON_OUT:-lint-findings.json}"
BASELINE_FILE="scripts/lint_baseline_ms"
FACTOR="${LINT_BUDGET_FACTOR:-2}"
BIN="$(mktemp -t gmlake-lint.XXXXXX)"
trap 'rm -f "$BIN"' EXIT

if ! go build -o "$BIN" ./cmd/gmlake-lint; then
    echo "lint_ci: build failed" >&2
    exit 2
fi

start_ns=$(date +%s%N)
"$BIN" -json ./... > "$OUT"
status=$?
elapsed_ms=$(( ($(date +%s%N) - start_ns) / 1000000 ))
echo "lint_ci: analysis took ${elapsed_ms}ms (exit ${status})" >&2

if [ "$status" -eq 1 ]; then
    echo "lint_ci: determinism-contract findings (full JSON in ${OUT}):" >&2
    "$BIN" -why ./... >&2 || true
    exit 1
elif [ "$status" -ne 0 ]; then
    echo "lint_ci: linter failed to run (exit ${status})" >&2
    exit "$status"
fi
rm -f "$OUT" # clean run: nothing to upload

if [ "${LINT_RECORD_BASELINE:-}" = "1" ]; then
    echo "$elapsed_ms" > "$BASELINE_FILE"
    echo "lint_ci: recorded baseline ${elapsed_ms}ms in ${BASELINE_FILE}" >&2
    exit 0
fi

if [ ! -f "$BASELINE_FILE" ]; then
    echo "lint_ci: no baseline recorded (${BASELINE_FILE} missing); skipping budget check" >&2
    exit 0
fi
baseline_ms=$(cat "$BASELINE_FILE")
budget_ms=$(( baseline_ms * FACTOR ))
if [ "$elapsed_ms" -gt "$budget_ms" ]; then
    echo "lint_ci: BUDGET EXCEEDED: ${elapsed_ms}ms > ${FACTOR}x baseline ${baseline_ms}ms (${budget_ms}ms)" >&2
    echo "lint_ci: if the tree or linter legitimately grew, re-record with LINT_RECORD_BASELINE=1 scripts/lint_ci.sh" >&2
    exit 1
fi
echo "lint_ci: within budget (${elapsed_ms}ms <= ${FACTOR}x baseline ${baseline_ms}ms)" >&2
