#!/usr/bin/env bash
# bench.sh — run the trajectory benchmark suite and write BENCH_<PR>.json.
#
# The BENCH_*.json files chart the repo's performance over PRs. Each file
# records the raw `go test -bench` lines plus two derived headline numbers:
#
#   harness_parallel_speedup   BenchmarkHarnessSequential / BenchmarkHarnessParallel
#                              wall-clock ratio — the parallel experiment
#                              engine's win on this host (bounded by cores)
#   serve_ns_per_request       BenchmarkServeStream's ns/request — the
#                              serving loop's per-request cost on a long
#                              backlogged stream
#   cluster_batch_p99_shrink   batch-class p99 E2E at 1 replica divided by
#                              the p99 at 8 replicas (BenchmarkServeCluster)
#                              — how much the cluster-scaling sweep shrinks
#                              the starvation tail
#   elastic_drain_savings      replica-seconds the queue-depth autoscaler
#                              did not consume versus the static
#                              MaxReplicas fleet (BenchmarkServeElastic:
#                              static minus elastic) — strictly positive
#                              when drain-on-idle pays
#   elastic_p99_ratio          batch-class p99 E2E of the elastic fleet
#                              divided by the static fleet's — the latency
#                              price of those savings (acceptance: < 2)
#   trace_replay_overhead      BenchmarkTraceReplay replay ns/request over
#                              synthetic-generation ns/request — the cost of
#                              producing a stream from a captured trace
#                              (JSONL decode + replay) instead of generating
#                              it
#   fit_error                  BenchmarkTraceFit's aggregate moment-match
#                              error (percent) of the mix fitted to a
#                              4000-request trace — calibration quality over
#                              PRs
#   goodput_under_faults       BenchmarkServeFaults' goodput (percent of
#                              offered load completed inside the deadline)
#                              at each fault intensity: fault-free, then
#                              MTTF 8s/4s/2s with retries:3 — the recovery
#                              path's headline
#   availability               the same variants' capacity-weighted uptime
#                              (percent) — what the goodput cost bought
#   scale_ns_per_request       BenchmarkServeScale's ns/request on the
#                              10M-request stream — steady-state serving
#                              cost at million-request scale
#   scale_retained_samples     raw latency samples still held at the end of
#                              the 10M-request run — the memory-flatness
#                              proxy (0 once every digest has spilled into
#                              its fixed-size sketch; the pre-sketch code
#                              retained all 10M)
#   affinity_ttft_savings      BenchmarkServeSession's jsq TTFT p50 minus
#                              the session-affinity TTFT p50, milliseconds
#                              — what routing a conversation's turns to
#                              their resident KV prefix saves the median
#                              request (acceptance: > 0)
#   session_ttft_p50           the same variants' raw TTFT p50 (ms) per
#                              dispatch policy, plus each policy's dispatch
#                              load imbalance (percent of the per-replica
#                              mean) — savings vs stickiness cost
#   lint_tree_ms               BenchmarkLintTree's per-run milliseconds —
#                              the determinism-contract linter's full-suite
#                              wall time over the tree (parse + type-check +
#                              call graph + effect propagation + analyzers),
#                              the CI lint step's cost; tracked so a
#                              complexity regression in the interprocedural
#                              passes shows up in the trajectory
#
# Usage:  scripts/bench.sh [output.json]
#   BENCHTIME=3x scripts/bench.sh          # more iterations
#   PR=3 scripts/bench.sh                  # write BENCH_3.json
#
# Hardening: set -euo pipefail aborts on the first failed command —
# including a failed `go test -bench` upstream of the tee — and the JSON
# is assembled in a temp file and moved into place atomically, so a
# crashed benchmark or a mid-stream awk failure can never leave a
# half-empty BENCH_<PR>.json behind.
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${PR:-10}"
OUT="${1:-BENCH_${PR}.json}"
BENCHTIME="${BENCHTIME:-2x}"
PATTERN='BenchmarkHarnessSequential$|BenchmarkHarnessParallel$|BenchmarkServeStream$|BenchmarkServeCluster$|BenchmarkServeElastic$|BenchmarkServeFaults$|BenchmarkServeSession$|BenchmarkServeScale$|BenchmarkTraceReplay$|BenchmarkTraceFit$|BenchmarkServeDecodeStep|BenchmarkGMLakeExactMatch$|BenchmarkTrainerStep$|BenchmarkLintTree$'

RAW=$(mktemp)
# Same directory as $OUT so the final mv is an atomic rename, never a
# cross-filesystem copy that could itself be interrupted.
TMPOUT="${OUT}.tmp.$$"
trap 'rm -f "$RAW" "$TMPOUT"' EXIT

go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -timeout 60m . | tee "$RAW" >&2

# The benchmarks' actual GOMAXPROCS: go test appends it as a -N name
# suffix, but only when it is != 1, so fall back to the environment
# override and finally the online CPU count.
FALLBACK_PROCS="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}"

awk -v pr="$PR" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v fallback="$FALLBACK_PROCS" '
/^Benchmark/ {
    name = $1
    # Prefer the -N suffix: it is the runtime GOMAXPROCS the benchmarks
    # actually ran with.
    if (match(name, /-[0-9]+$/)) {
        gomaxprocs = substr(name, RSTART + 1)
    }
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = $3
    extra = ""
    # trailing "<value> <unit>" metric pairs, e.g. "6989 ns/request"
    for (i = 5; i < NF; i += 2) {
        extra = extra sprintf(",\"%s\":%s", $(i+1), $i)
    }
    benches[++n] = sprintf("    {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s%s}", name, iters, ns, extra)
    nsop[name] = ns
    if (name == "BenchmarkServeStream") {
        for (i = 5; i < NF; i += 2) if ($(i+1) == "ns/request") servens = $i
    }
    if (name ~ /^BenchmarkServeCluster\/replicas=(1|8)$/) {
        for (i = 5; i < NF; i += 2) if ($(i+1) == "batch-p99-ms") clusterp99[name] = $i
    }
    if (name ~ /^BenchmarkServeElastic\/fleet=(static|elastic)$/) {
        for (i = 5; i < NF; i += 2) {
            if ($(i+1) == "replica-secs") elasticrs[name] = $i
            if ($(i+1) == "batch-p99-ms") elasticp99[name] = $i
        }
    }
    if (name ~ /^BenchmarkTraceReplay\/source=(synthetic|replay)$/) {
        for (i = 5; i < NF; i += 2) if ($(i+1) == "ns/request") tracens[name] = $i
    }
    if (name ~ /^BenchmarkServeFaults\/faults=/) {
        fname = name
        sub(/^BenchmarkServeFaults\/faults=/, "", fname)
        for (i = 5; i < NF; i += 2) {
            if ($(i+1) == "goodput-pct") faultgood[fname] = $i
            if ($(i+1) == "avail-pct") faultavail[fname] = $i
        }
    }
    if (name ~ /^BenchmarkServeSession\/dispatch=/) {
        sname = name
        sub(/^BenchmarkServeSession\/dispatch=/, "", sname)
        for (i = 5; i < NF; i += 2) {
            if ($(i+1) == "ttft-p50-ms") sessttft[sname] = $i
            if ($(i+1) == "imbalance-pct") sessimb[sname] = $i
        }
    }
    if (name == "BenchmarkLintTree") {
        for (i = 5; i < NF; i += 2) if ($(i+1) == "lint-ms") lintms = $i
    }
    if (name == "BenchmarkTraceFit") {
        for (i = 5; i < NF; i += 2) if ($(i+1) == "fit-err-pct") fiterr = $i
    }
    if (name == "BenchmarkServeScale/requests=10000000") {
        for (i = 5; i < NF; i += 2) {
            if ($(i+1) == "ns/request") scalens = $i
            if ($(i+1) == "retained-samples") scaleretained = $i
        }
    }
}
END {
    if (!gomaxprocs) gomaxprocs = fallback
    printf "{\n"
    printf "  \"pr\": %s,\n", pr
    printf "  \"date\": \"%s\",\n", date
    printf "  \"gomaxprocs\": %s,\n", gomaxprocs
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", benches[i], (i < n ? "," : "")
    printf "  ],\n"
    printf "  \"derived\": {\n"
    if (nsop["BenchmarkHarnessSequential"] && nsop["BenchmarkHarnessParallel"]) {
        printf "    \"harness_parallel_speedup\": %.2f,\n", nsop["BenchmarkHarnessSequential"] / nsop["BenchmarkHarnessParallel"]
    }
    p1 = clusterp99["BenchmarkServeCluster/replicas=1"]
    p8 = clusterp99["BenchmarkServeCluster/replicas=8"]
    if (p1 && p8) {
        printf "    \"cluster_batch_p99_shrink\": %.1f,\n", p1 / p8
    }
    srs = elasticrs["BenchmarkServeElastic/fleet=static"]
    ers = elasticrs["BenchmarkServeElastic/fleet=elastic"]
    if (srs && ers) {
        printf "    \"elastic_drain_savings\": %.1f,\n", srs - ers
    }
    sp99 = elasticp99["BenchmarkServeElastic/fleet=static"]
    ep99 = elasticp99["BenchmarkServeElastic/fleet=elastic"]
    if (sp99 && ep99) {
        printf "    \"elastic_p99_ratio\": %.2f,\n", ep99 / sp99
    }
    syn = tracens["BenchmarkTraceReplay/source=synthetic"]
    rep = tracens["BenchmarkTraceReplay/source=replay"]
    if (syn && rep) {
        printf "    \"trace_replay_overhead\": %.2f,\n", rep / syn
    }
    if (faultgood["none"] != "" && faultgood["mttf2s"] != "") {
        printf "    \"goodput_under_faults\": {\"none\": %s, \"mttf8s\": %s, \"mttf4s\": %s, \"mttf2s\": %s},\n", faultgood["none"], faultgood["mttf8s"], faultgood["mttf4s"], faultgood["mttf2s"]
        printf "    \"availability\": {\"none\": %s, \"mttf8s\": %s, \"mttf4s\": %s, \"mttf2s\": %s},\n", faultavail["none"], faultavail["mttf8s"], faultavail["mttf4s"], faultavail["mttf2s"]
    }
    if (sessttft["affinity"] != "" && sessttft["jsq"] != "") {
        printf "    \"affinity_ttft_savings\": %.1f,\n", sessttft["jsq"] - sessttft["affinity"]
        printf "    \"session_ttft_p50\": {\"affinity\": %s, \"jsq\": %s, \"least-kv\": %s},\n", sessttft["affinity"], sessttft["jsq"], sessttft["least-kv"]
        printf "    \"session_imbalance_pct\": {\"affinity\": %s, \"jsq\": %s, \"least-kv\": %s},\n", sessimb["affinity"], sessimb["jsq"], sessimb["least-kv"]
    }
    if (lintms != "") {
        printf "    \"lint_tree_ms\": %s,\n", lintms
    }
    if (fiterr != "") {
        printf "    \"fit_error\": %.2f,\n", fiterr
    }
    if (scalens != "") {
        printf "    \"scale_ns_per_request\": %s,\n", scalens
        printf "    \"scale_retained_samples\": %s,\n", scaleretained
    }
    printf "    \"serve_ns_per_request\": %s\n", (servens ? servens : "null")
    printf "  }\n"
    printf "}\n"
}' "$RAW" > "$TMPOUT"

mv "$TMPOUT" "$OUT"
echo "wrote $OUT" >&2
