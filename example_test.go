package gmlake_test

import (
	"fmt"

	gmlake "repro"
)

// Example shows the core of the paper in a few lines: free blocks too small
// individually for a new request are stitched into one contiguous virtual
// range, so reserved memory does not grow.
func Example() {
	sys := gmlake.NewSystem(8 * gmlake.GiB)
	alloc := gmlake.New(sys.Driver)

	var bufs []*gmlake.Buffer
	for i := 0; i < 4; i++ {
		b, err := alloc.Alloc(512 * gmlake.MiB)
		if err != nil {
			panic(err)
		}
		bufs = append(bufs, b)
	}
	for _, b := range bufs {
		alloc.Free(b)
	}

	// 2 GiB from four scattered 512 MiB blocks: no new physical memory.
	big, err := alloc.Alloc(2 * gmlake.GiB)
	if err != nil {
		panic(err)
	}
	defer alloc.Free(big)

	st := alloc.Stats()
	fmt.Printf("reserved %.0f GiB, utilization %.0f%%\n",
		float64(st.Reserved)/float64(gmlake.GiB), 100*st.Utilization())
	// Output: reserved 2 GiB, utilization 100%
}

// ExampleNewTrainer runs a miniature fine-tuning workload against the
// caching baseline and GMLake and compares reserved memory.
func ExampleNewTrainer() {
	spec := gmlake.TrainSpec{
		Model:    gmlake.OPT1_3B,
		Strategy: gmlake.StrategyLR, // LoRA + recomputation
		World:    4,
		Batch:    32,
		Seed:     7,
	}
	run := func(gml bool) gmlake.Stats {
		sys := gmlake.NewSystem(80 * gmlake.GiB)
		var alloc gmlake.MemoryAllocator
		if gml {
			alloc = gmlake.New(sys.Driver)
		} else {
			alloc = gmlake.NewCaching(sys.Driver)
		}
		tr, err := gmlake.NewTrainer(spec, alloc, sys.Clock)
		if err != nil {
			panic(err)
		}
		if err := tr.Setup(); err != nil {
			panic(err)
		}
		defer tr.Teardown()
		for i := 0; i < 20; i++ {
			if err := tr.Step(); err != nil {
				panic(err)
			}
		}
		return alloc.Stats()
	}
	base, gml := run(false), run(true)
	fmt.Println("GMLake reserves less:", gml.PeakReserved < base.PeakReserved)
	// Output: GMLake reserves less: true
}

// ExampleAllocator_StrategyCounts demonstrates convergence: a repeating
// allocation pattern is served entirely by exact matches after warm-up.
func ExampleAllocator_StrategyCounts() {
	sys := gmlake.NewSystem(4 * gmlake.GiB)
	alloc := gmlake.New(sys.Driver)

	iteration := func() {
		a, _ := alloc.Alloc(300 * gmlake.MiB)
		b, _ := alloc.Alloc(700 * gmlake.MiB)
		alloc.Free(a)
		alloc.Free(b)
	}
	iteration() // warm-up
	s1Before, _, _, _ := alloc.StrategyCounts()
	for i := 0; i < 10; i++ {
		iteration()
	}
	s1After, _, _, _ := alloc.StrategyCounts()
	fmt.Println("steady-state exact matches:", s1After-s1Before)
	// Output: steady-state exact matches: 20
}

// ExampleStreamAllocator shows PyTorch's record_stream semantics: a free is
// deferred while another stream may still be reading the buffer.
func ExampleStreamAllocator() {
	sys := gmlake.NewSystem(8 * gmlake.GiB)
	sched := gmlake.NewStreamScheduler(sys.Clock)
	alloc := gmlake.NewStreamAllocator(gmlake.NewCaching(sys.Driver), sched)

	side := sched.NewStream()
	b, err := alloc.Alloc(256 * gmlake.MiB)
	if err != nil {
		panic(err)
	}
	sched.Launch(side, 10*1e6) // a 10 ms kernel reading b
	alloc.RecordStream(b, side)
	alloc.Free(b)
	fmt.Printf("pending frees while the kernel runs: %d\n", alloc.PendingFrees())

	sched.Synchronize(side)
	alloc.ProcessEvents()
	fmt.Printf("pending frees after sync: %d\n", alloc.PendingFrees())
	// Output:
	// pending frees while the kernel runs: 1
	// pending frees after sync: 0
}

// ExampleCaptureFragmentation inspects an allocator's free space with the
// classic fragmentation indices.
func ExampleCaptureFragmentation() {
	sys := gmlake.NewSystem(8 * gmlake.GiB)
	alloc := gmlake.NewCaching(sys.Driver)

	// Leave two scattered 256 MiB holes behind pinned neighbours.
	var hold, free []*gmlake.Buffer
	for i := 0; i < 4; i++ {
		a, _ := alloc.Alloc(256 * gmlake.MiB)
		b, _ := alloc.Alloc(256 * gmlake.MiB)
		hold, free = append(hold, a), append(free, b)
	}
	for _, b := range free {
		alloc.Free(b)
	}

	snap, ok := gmlake.CaptureFragmentation(alloc)
	fmt.Printf("captured: %v, free blocks: %d\n", ok, len(snap.Free))
	fmt.Printf("a 1 GiB request finds %.0f%% of free space unusable\n",
		100*snap.UnusableIndex(1*gmlake.GiB))
	for _, b := range hold {
		alloc.Free(b)
	}
	// Output:
	// captured: true, free blocks: 4
	// a 1 GiB request finds 100% of free space unusable
}

// ExamplePlanMemory sizes a 3D-parallel training job without running it.
func ExamplePlanMemory() {
	plan, err := gmlake.PlanMemory(gmlake.OPT13B,
		gmlake.Topology{DP: 4, TP: 2, PP: 2}, gmlake.ZeRO3, gmlake.OneFOneB, 4, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("16 GPUs, worst rank needs %.1f GB — fits 80 GB: %v\n",
		float64(plan.MaxRankBytes())/float64(gmlake.GiB), plan.Fits(80*gmlake.GiB, 0.1))
	// Output: 16 GPUs, worst rank needs 19.2 GB — fits 80 GB: true
}
